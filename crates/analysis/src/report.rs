//! Combined static-analysis report for a ruleset: a verdict lattice
//! per semantic property, with certificate provenance.
//!
//! Each semantic property (termination / bts / core-bts) gets a
//! [`Verdict`]: **Certified** with the [`Certificate`] that justifies
//! it, **Refuted** with the witness, **`LikelyRefuted`** when the witness
//! only sinks a sufficient condition (an MFA cycle refutes MFA-class
//! membership, not termination itself), or **Inconclusive** with the
//! budget that ran out. The raw syntactic facts (datalog, acyclicity,
//! guardedness) stay available as plain booleans.
//!
//! Certificate provenance matters because the routes are *not*
//! interchangeable (the paper's "complications"): guardedness certifies
//! bts but says nothing about core-chase width — the elevator `K_v` is
//! treewidth-1 bts while its core chase width diverges — so `core-bts`
//! is never certified from a guardedness certificate, only from a
//! termination certificate or explicit core-width evidence.

use std::fmt;

use chase_engine::{RuleId, RuleSet};
use chase_homomorphism::SearchBudget;

use crate::acyclicity::{jointly_acyclic, weakly_acyclic};
use crate::guards::{guardedness, Guardedness};
use crate::kbounded::{kbounded_test, KBoundedOutcome};
use crate::linear::{linear_fragment, linear_termination, LinearOutcome};
use crate::mfa::{mfa_test, MfaOutcome};

/// Default application budget for the MFA sub-test of [`analyze`].
const DEFAULT_MFA_BUDGET: usize = 5_000;

/// Application slice granted to the k-boundedness rank analysis when
/// the MFA chase hit a cyclic Skolem term: the critical chase usually
/// diverges past that point, and the rank analysis has no early exit,
/// so it only gets enough rope for the small terminating exceptions.
const CYCLIC_KBOUNDED_SLICE: usize = 256;

/// What justified a [`Verdict::Certified`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Certificate {
    /// Every rule is datalog.
    Datalog,
    /// Weak acyclicity (Fagin et al.).
    WeaklyAcyclic,
    /// Joint acyclicity (Krötzsch & Rudolph).
    JointlyAcyclic,
    /// MFA-style critical-instance saturation ([`crate::mfa`]).
    Mfa,
    /// Every rule is guarded.
    Guarded,
    /// Every rule is frontier-guarded.
    FrontierGuarded,
    /// Every rule is linear.
    Linear,
    /// The exact linear-ruleset termination decision
    /// ([`crate::linear`], after Leclère–Mugnier–Thomazo–Ulliana):
    /// derivation-tree-pattern saturation proved the Skolem chase
    /// terminates on every fact base.
    LinearTermination,
    /// The breadth-first chase from the critical instance saturated
    /// within this many rounds ([`crate::kbounded`], after Delivorias
    /// et al.): the ruleset is k-bounded, hence fes.
    KBounded(usize),
    /// Dynamic evidence: the restricted-chase treewidth profile
    /// plateaued at this bound (finite-horizon evidence, not a proof).
    RestrictedWidthProbe(usize),
    /// Dynamic evidence: the core-chase treewidth profile plateaued at
    /// this bound (finite-horizon evidence, not a proof).
    CoreWidthProbe(usize),
}

impl Certificate {
    /// Stable kebab-case name for reports and wire formats.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Certificate::Datalog => "datalog",
            Certificate::WeaklyAcyclic => "weakly-acyclic",
            Certificate::JointlyAcyclic => "jointly-acyclic",
            Certificate::Mfa => "mfa",
            Certificate::Guarded => "guarded",
            Certificate::FrontierGuarded => "frontier-guarded",
            Certificate::Linear => "linear",
            Certificate::LinearTermination => "linear-termination",
            Certificate::KBounded(_) => "k-bounded",
            Certificate::RestrictedWidthProbe(_) => "restricted-width-probe",
            Certificate::CoreWidthProbe(_) => "core-width-probe",
        }
    }
}

/// What justified a [`Verdict::Refuted`] or [`Verdict::LikelyRefuted`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Refutation {
    /// The MFA test found a cyclically nested Skolem term: membership
    /// in the MFA class is refuted and the critical chase shows the
    /// self-similar expansion that drives divergence. This witness
    /// refutes the MFA *class*, not termination itself (terminating
    /// rulesets can produce cyclic Skolem terms), so the termination
    /// route carries it as [`Verdict::LikelyRefuted`], never
    /// [`Verdict::Refuted`].
    MfaCycle {
        /// Rule whose existential restarted its own expansion.
        rule: RuleId,
        /// Nesting depth at which the cycle closed.
        depth: usize,
    },
    /// Dynamic evidence: the core-chase treewidth profile kept growing
    /// over the whole probe horizon.
    CoreWidthDiverging,
    /// The exact linear-ruleset decision found a pumpable derivation
    /// pattern ([`crate::linear`]): a reachable cycle of single-atom
    /// derivations that re-fires the same rule on its own fresh null
    /// forever. Unlike an MFA cycle this **is** a proof — linear
    /// derivations are self-similar, so the loop iterates unboundedly
    /// and the Skolem chase diverges on the critical instance.
    LinearNonTermination {
        /// The rule whose existential is pumped by the cycle.
        rule: RuleId,
    },
}

impl Refutation {
    /// Stable kebab-case name for reports and wire formats.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Refutation::MfaCycle { .. } => "mfa-cycle",
            Refutation::CoreWidthDiverging => "core-width-diverging",
            Refutation::LinearNonTermination { .. } => "linear-non-termination",
        }
    }
}

/// Verdict for one semantic property: certified, refuted, likely
/// refuted (positive divergence evidence short of a proof), or
/// inconclusive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The property holds, justified by this certificate.
    Certified(Certificate),
    /// The property fails, with a witness.
    Refuted(Refutation),
    /// Finite-horizon evidence points against the property — the
    /// witness refutes a *sufficient condition* (e.g. MFA-class
    /// membership), not the property itself. Strictly weaker than
    /// [`Verdict::Refuted`]; consumers that act on divergence evidence
    /// (budget tightening, strict shedding) opt into it via
    /// [`Verdict::suspects_divergence`].
    LikelyRefuted(Refutation),
    /// Neither direction was decided within the budget (applications
    /// granted to the dynamic sub-tests).
    Inconclusive {
        /// The application budget that ran out.
        budget: usize,
    },
}

impl Verdict {
    /// Is the property certified?
    #[must_use]
    pub fn is_certified(&self) -> bool {
        matches!(self, Verdict::Certified(_))
    }

    /// Is the property positively refuted?
    #[must_use]
    pub fn is_refuted(&self) -> bool {
        matches!(self, Verdict::Refuted(_))
    }

    /// Is the property likely refuted (evidence, not proof)?
    #[must_use]
    pub fn is_likely_refuted(&self) -> bool {
        matches!(self, Verdict::LikelyRefuted(_))
    }

    /// Did the budget run out before either direction was decided?
    #[must_use]
    pub fn is_inconclusive(&self) -> bool {
        matches!(self, Verdict::Inconclusive { .. })
    }

    /// Refuted or likely refuted: there is a positive divergence
    /// witness, proven or finite-horizon. This is the predicate that
    /// fail-fast policies (tight budgets, strict admission shedding)
    /// key on — deliberately including the evidence-only level.
    #[must_use]
    pub fn suspects_divergence(&self) -> bool {
        matches!(self, Verdict::Refuted(_) | Verdict::LikelyRefuted(_))
    }

    /// The certificate, when certified.
    #[must_use]
    pub fn certificate(&self) -> Option<&Certificate> {
        match self {
            Verdict::Certified(c) => Some(c),
            _ => None,
        }
    }

    /// The divergence witness, when refuted or likely refuted.
    #[must_use]
    pub fn refutation(&self) -> Option<&Refutation> {
        match self {
            Verdict::Refuted(r) | Verdict::LikelyRefuted(r) => Some(r),
            _ => None,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Certified(c) => match c {
                Certificate::RestrictedWidthProbe(w) | Certificate::CoreWidthProbe(w) => {
                    write!(f, "certified by {} (width {w})", c.name())
                }
                Certificate::KBounded(k) => write!(f, "certified by {} (k {k})", c.name()),
                _ => write!(f, "certified by {}", c.name()),
            },
            Verdict::Refuted(r) | Verdict::LikelyRefuted(r) => {
                let level = if self.is_refuted() {
                    "refuted"
                } else {
                    "likely refuted"
                };
                match r {
                    Refutation::MfaCycle { rule, depth } => {
                        write!(f, "{level} by mfa-cycle (rule {rule}, depth {depth})")
                    }
                    Refutation::CoreWidthDiverging => write!(f, "{level} by {}", r.name()),
                    Refutation::LinearNonTermination { rule } => {
                        write!(f, "{level} by {} (rule {rule})", r.name())
                    }
                }
            }
            Verdict::Inconclusive { budget } => write!(f, "inconclusive (budget {budget})"),
        }
    }
}

/// What a finite-horizon treewidth-profile probe observed.
///
/// The three states are deliberately distinct: a profile that *climbed*
/// over the whole horizon is positive divergence evidence, while a
/// horizon too short to judge carries **no** signal — conflating the
/// two would mint refutations out of small probe budgets.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WidthObservation {
    /// The profile plateaued at this certified upper bound (or the
    /// chase terminated, trivially bounding it).
    Plateau(usize),
    /// The profile was still climbing when the horizon ended.
    Climbing,
    /// The horizon was too short (or no probe ran): no signal either
    /// way.
    #[default]
    Unobserved,
}

impl WidthObservation {
    /// The plateau bound, when one was observed.
    #[must_use]
    pub fn plateau(self) -> Option<usize> {
        match self {
            WidthObservation::Plateau(w) => Some(w),
            _ => None,
        }
    }

    /// Did the profile climb over the whole horizon?
    #[must_use]
    pub fn is_climbing(self) -> bool {
        matches!(self, WidthObservation::Climbing)
    }

    /// Stable kebab-case name for reports and wire formats.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            WidthObservation::Plateau(_) => "plateau",
            WidthObservation::Climbing => "climbing",
            WidthObservation::Unobserved => "unobserved",
        }
    }
}

/// Dynamic (per-instance, finite-horizon) evidence from the chase
/// probes in `chase_core::classes`, used to settle verdicts that the
/// syntactic certificates leave inconclusive.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DynamicEvidence {
    /// Did the restricted-chase probe terminate within its budget?
    pub restricted_terminated: bool,
    /// What the restricted-chase treewidth profile showed.
    pub restricted_width: WidthObservation,
    /// Did the core-chase probe terminate within its budget?
    pub core_terminated: bool,
    /// What the core-chase treewidth profile showed.
    pub core_width: WidthObservation,
}

/// Everything the analyses can certify about a ruleset: syntactic
/// facts plus the semantic verdict lattice (Figure 1 vocabulary).
#[derive(Clone, Debug)]
pub struct RulesetReport {
    /// Is every rule datalog (no existential variables)?
    pub datalog: bool,
    /// Weak acyclicity (Fagin et al.).
    pub weakly_acyclic: bool,
    /// Joint acyclicity (Krötzsch & Rudolph).
    pub jointly_acyclic: bool,
    /// Guardedness classification.
    pub guardedness: Guardedness,
    /// Raw outcome of the MFA-style critical-instance test.
    pub mfa: MfaOutcome,
    /// Raw outcome of the k-boundedness rank analysis
    /// ([`crate::kbounded`]), always computed: even when a cheaper
    /// certificate decides the verdict, a `Bounded { k, .. }` outcome
    /// hands the planner a hard round bound.
    pub kbounded: KBoundedOutcome,
    /// The linear fragment: rules with single-atom bodies, in original
    /// rule-id order.
    pub linear_rules: Vec<RuleId>,
    /// Exact termination verdict for the linear fragment analyzed as a
    /// ruleset of its own ([`crate::linear`]). Always decided for small
    /// fragments — `Certified(LinearTermination)`,
    /// `Refuted(LinearNonTermination)` (with the original rule id), or
    /// `Inconclusive` only when the pattern space outgrew the budget.
    /// An empty fragment is trivially certified.
    pub linear_fragment: Verdict,
    /// Chase termination on every fact base (**fes** membership).
    pub terminating: Verdict,
    /// Treewidth-bounded restricted chase on every fact base (**bts**).
    pub bts: Verdict,
    /// Terminating, treewidth-bounded **core** chase (**core-bts**).
    /// Never certified from guardedness alone: bts does not bound the
    /// core chase (the elevator is the counterexample).
    pub core_bts: Verdict,
}

impl RulesetReport {
    /// Does some certificate guarantee **fes** membership?
    #[must_use]
    pub fn certified_fes(&self) -> bool {
        self.terminating.is_certified()
    }

    /// Does some certificate guarantee **bts** membership?
    #[must_use]
    pub fn certified_bts(&self) -> bool {
        self.bts.is_certified()
    }

    /// Does some certificate guarantee **core-bts** membership?
    #[must_use]
    pub fn certified_core_bts(&self) -> bool {
        self.core_bts.is_certified()
    }

    /// Is every decidability route refuted-or-unknown, with positive
    /// divergence evidence on the termination route? This is the
    /// strict-admission shedding predicate: nothing certified, and a
    /// divergence witness in hand. It deliberately accepts the
    /// [`Verdict::LikelyRefuted`] level — an MFA cycle does not *prove*
    /// non-termination, but shedding on it while no other route is
    /// certified is the analyzer's only actionable signal.
    #[must_use]
    pub fn refutes_every_route(&self) -> bool {
        self.terminating.suspects_divergence()
            && !self.bts.is_certified()
            && !self.core_bts.is_certified()
    }

    /// Upgrades inconclusive verdicts with dynamic probe evidence.
    ///
    /// Probe certificates are finite-horizon evidence, not proofs; they
    /// carry their own [`Certificate`] variants so consumers can
    /// discount them. Syntactic certificates are never overridden, and
    /// an [`WidthObservation::Unobserved`] probe (horizon too short)
    /// changes nothing — only a profile that *climbed over the whole
    /// horizon* refutes core-bts.
    pub fn attach_evidence(&mut self, ev: &DynamicEvidence) {
        if !self.bts.is_certified() {
            if let Some(w) = ev.restricted_width.plateau() {
                self.bts = Verdict::Certified(Certificate::RestrictedWidthProbe(w));
            }
        }
        if !self.core_bts.is_certified() {
            match ev.core_width {
                WidthObservation::Plateau(w) => {
                    self.core_bts = Verdict::Certified(Certificate::CoreWidthProbe(w));
                }
                WidthObservation::Climbing => {
                    self.core_bts = Verdict::Refuted(Refutation::CoreWidthDiverging);
                }
                WidthObservation::Unobserved => {}
            }
        }
    }
}

impl fmt::Display for RulesetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "datalog:          {}", self.datalog)?;
        writeln!(f, "weakly acyclic:   {}", self.weakly_acyclic)?;
        writeln!(f, "jointly acyclic:  {}", self.jointly_acyclic)?;
        writeln!(f, "guarded:          {}", self.guardedness.is_guarded())?;
        writeln!(
            f,
            "frontier-guarded: {}",
            self.guardedness.is_frontier_guarded()
        )?;
        let mfa = match &self.mfa {
            MfaOutcome::Acyclic { applications } => {
                format!("acyclic ({applications} applications)")
            }
            MfaOutcome::CyclicTerm { rule, depth } => {
                format!("cyclic term (rule {rule}, depth {depth})")
            }
            MfaOutcome::BudgetExhausted { applications } => {
                format!("budget exhausted ({applications} applications)")
            }
        };
        writeln!(f, "mfa:              {mfa}")?;
        let kb = match &self.kbounded {
            KBoundedOutcome::Bounded { k, applications } => {
                format!("bounded (k {k}, {applications} applications)")
            }
            KBoundedOutcome::DepthUnbounded { applications } => {
                format!("depth unbounded ({applications} applications)")
            }
            KBoundedOutcome::BudgetExhausted { applications } => {
                format!("budget exhausted ({applications} applications)")
            }
        };
        writeln!(f, "k-bounded:        {kb}")?;
        writeln!(
            f,
            "linear fragment:  {} rule(s), {}",
            self.linear_rules.len(),
            self.linear_fragment
        )?;
        writeln!(f, "⇒ terminating: {}", self.terminating)?;
        writeln!(f, "⇒ bts:         {}", self.bts)?;
        write!(f, "⇒ core-bts:    {}", self.core_bts)
    }
}

/// Runs every static analysis on a ruleset with the default MFA budget.
#[must_use]
pub fn analyze(rules: &RuleSet) -> RulesetReport {
    analyze_with_budget(
        rules,
        &SearchBudget::unlimited().with_node_limit(DEFAULT_MFA_BUDGET),
    )
}

/// Runs every static analysis, granting the dynamic sub-tests (MFA) the
/// given shared [`SearchBudget`].
#[must_use]
pub fn analyze_with_budget(rules: &RuleSet, budget: &SearchBudget) -> RulesetReport {
    let datalog = rules.iter().all(|(_, r)| r.is_datalog());
    let wa = weakly_acyclic(rules);
    let ja = jointly_acyclic(rules);
    let guards = guardedness(rules);
    let mfa = mfa_test(rules, budget);
    let spent = budget.node_limit.unwrap_or(DEFAULT_MFA_BUDGET);

    // Exact decision for the linear fragment (single-atom-body rules),
    // run as a ruleset of its own. The verdict names original rule ids.
    let linear_rules = linear_fragment(rules);
    let linear_fragment = {
        let mut sub = RuleSet::new();
        for &id in &linear_rules {
            sub.push(rules.get(id).clone());
        }
        match linear_termination(&sub, budget) {
            LinearOutcome::Terminating { .. } => Verdict::Certified(Certificate::LinearTermination),
            LinearOutcome::NonTerminating { rule } => {
                Verdict::Refuted(Refutation::LinearNonTermination {
                    rule: linear_rules[rule],
                })
            }
            LinearOutcome::NotLinear | LinearOutcome::BudgetExhausted { .. } => {
                Verdict::Inconclusive { budget: spent }
            }
        }
    };
    let whole_linear = linear_rules.len() == rules.len();

    let terminating = if whole_linear && linear_fragment.is_refuted() {
        // The exact decision covers the whole ruleset: a pumpable
        // derivation pattern is a *proof* of non-termination, stronger
        // than anything the heuristic routes below could say.
        linear_fragment.clone()
    } else if datalog {
        Verdict::Certified(Certificate::Datalog)
    } else if wa {
        Verdict::Certified(Certificate::WeaklyAcyclic)
    } else if ja {
        Verdict::Certified(Certificate::JointlyAcyclic)
    } else if whole_linear && linear_fragment.is_certified() {
        linear_fragment.clone()
    } else {
        match &mfa {
            MfaOutcome::Acyclic { .. } => Verdict::Certified(Certificate::Mfa),
            // A cyclic Skolem term refutes MFA-class membership, not
            // termination itself (mfa.rs): evidence level, not proof.
            MfaOutcome::CyclicTerm { rule, depth } => {
                Verdict::LikelyRefuted(Refutation::MfaCycle {
                    rule: *rule,
                    depth: *depth,
                })
            }
            MfaOutcome::BudgetExhausted { .. } => Verdict::Inconclusive { budget: spent },
        }
    };

    // k-boundedness: even when a cheaper certificate decides the
    // verdict, a Bounded outcome hands the planner a hard round bound.
    // As a *verdict* route it can rescue rulesets the routes above
    // leave open — its certificate (a uniform breadth-first round
    // bound) even overrides an MFA cycle, which is evidence, not
    // proof. Unlike MFA the rank analysis has no early exit on
    // divergence, so its application slice is sized by what the MFA
    // chase observed: a saturation bound when MFA saturated, a small
    // fixed slice after a cyclic term (the chase usually diverges and
    // would burn the whole budget), nothing once MFA itself timed out.
    let kbounded = match &mfa {
        MfaOutcome::Acyclic { applications } => {
            kbounded_test(rules, &budget.clone().with_node_limit(applications + 16))
        }
        MfaOutcome::CyclicTerm { .. } => kbounded_test(
            rules,
            &budget
                .clone()
                .with_node_limit(CYCLIC_KBOUNDED_SLICE.min(spent)),
        ),
        MfaOutcome::BudgetExhausted { .. } => KBoundedOutcome::BudgetExhausted { applications: 0 },
    };
    let terminating = if terminating.is_certified() || terminating.is_refuted() {
        terminating
    } else {
        match &kbounded {
            KBoundedOutcome::Bounded { k, .. } => Verdict::Certified(Certificate::KBounded(*k)),
            KBoundedOutcome::DepthUnbounded { .. } | KBoundedOutcome::BudgetExhausted { .. } => {
                terminating
            }
        }
    };

    let bts = if let Verdict::Certified(c) = &terminating {
        // fes ⇒ every chase is finite ⇒ trivially treewidth-bounded.
        Verdict::Certified(c.clone())
    } else if guards.is_linear() {
        Verdict::Certified(Certificate::Linear)
    } else if guards.is_guarded() {
        Verdict::Certified(Certificate::Guarded)
    } else if guards.is_frontier_guarded() {
        Verdict::Certified(Certificate::FrontierGuarded)
    } else {
        Verdict::Inconclusive { budget: spent }
    };

    // Core-bts: a termination certificate gives a finite core chase;
    // guardedness does NOT carry over (bts with diverging core-chase
    // width is possible — the elevator). Width evidence arrives later
    // via `attach_evidence`.
    let core_bts = if let Verdict::Certified(c) = &terminating {
        Verdict::Certified(c.clone())
    } else {
        Verdict::Inconclusive { budget: spent }
    };

    RulesetReport {
        datalog,
        weakly_acyclic: wa,
        jointly_acyclic: ja,
        guardedness: guards,
        mfa,
        kbounded,
        linear_rules,
        linear_fragment,
        terminating,
        bts,
        core_bts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_parser::parse_program;

    fn rules(src: &str) -> RuleSet {
        parse_program(src).expect("parses").rules
    }

    #[test]
    fn datalog_certifies_everything() {
        let report = analyze(&rules("T: r(X, Y), r(Y, Z) -> r(X, Z)."));
        assert!(report.datalog);
        assert!(report.certified_fes());
        assert!(report.certified_bts());
        assert!(report.certified_core_bts());
        assert_eq!(
            report.terminating.certificate(),
            Some(&Certificate::Datalog)
        );
    }

    #[test]
    fn linear_chain_certifies_bts_not_fes_nor_core_bts() {
        let report = analyze(&rules("R: r(X, Y) -> r(Y, Z)."));
        assert!(!report.certified_fes());
        assert!(report.certified_bts(), "linear rules are guarded ⇒ bts");
        assert_eq!(report.bts.certificate(), Some(&Certificate::Linear));
        // The fixed predicate: guardedness certifies bts only. Whether
        // the *core* chase stays width-bounded is a separate question
        // (the elevator is bts with diverging core-chase width), so
        // without width evidence the verdict stays open.
        assert!(!report.certified_core_bts());
        assert!(!report.core_bts.is_refuted());
        // The ruleset is all-linear, so the exact decision applies and
        // upgrades the old MFA-cycle *evidence* to a proven refutation:
        // the derivation-pattern cycle pumps forever.
        assert_eq!(
            report.terminating,
            Verdict::Refuted(Refutation::LinearNonTermination { rule: 0 })
        );
        assert_eq!(report.linear_rules, vec![0]);
        assert!(report.terminating.is_refuted());
        assert!(report.terminating.suspects_divergence());
    }

    #[test]
    fn unguarded_cyclic_ruleset_certifies_nothing() {
        let report = analyze(&rules("Fill: h(X, Y), v(X, X2) -> h(X2, Y2), v(Y, Y2)."));
        assert!(!report.certified_fes());
        assert!(!report.certified_bts());
        assert!(!report.certified_core_bts());
        assert!(report.refutes_every_route());
    }

    #[test]
    fn weakly_acyclic_existential_ruleset() {
        let report = analyze(&rules("R: r(X, Y) -> s(Y, Z). S: s(X, Y) -> t(X)."));
        assert!(!report.datalog);
        assert!(report.weakly_acyclic);
        assert!(report.certified_fes());
        assert!(report.certified_core_bts());
        assert_eq!(
            report.core_bts.certificate(),
            Some(&Certificate::WeaklyAcyclic)
        );
    }

    #[test]
    fn mfa_certifies_beyond_acyclicity() {
        // The same-variable-join pattern: R1 puts its null in *both*
        // columns of `q` (in separate atoms), and R2's body `q(Y, Y)`
        // joins the columns. Position-wise the null reaches every body
        // position of R2's frontier and flows back into `p`, so both
        // weak and joint acyclicity report a cycle. Atom-wise no single
        // null ever occupies both columns of one `q`-fact, so R2 never
        // fires on invented values and the Skolem chase saturates: MFA
        // certifies what the positional over-approximations cannot.
        let report = analyze(&rules("R1: p(X) -> q(X, Z), q(Z, X). R2: q(Y, Y) -> p(Y)."));
        assert!(!report.weakly_acyclic);
        assert!(!report.jointly_acyclic);
        // Both rules have single-atom bodies, so the exact linear
        // decision now outranks MFA on the same ruleset; the raw MFA
        // outcome still shows the saturation.
        assert_eq!(
            report.terminating.certificate(),
            Some(&Certificate::LinearTermination)
        );
        assert!(matches!(report.mfa, MfaOutcome::Acyclic { .. }));
        assert!(report.certified_core_bts());
    }

    #[test]
    fn mfa_route_still_fires_for_non_linear_rulesets() {
        // The same-variable-join pattern from above, plus an unrelated
        // two-atom-body datalog rule that pushes the ruleset out of the
        // linear fragment without touching the acyclicity analysis: the
        // MFA certificate is still the one that lands.
        let report = analyze(&rules(
            "R1: p(X) -> q(X, Z), q(Z, X). R2: q(Y, Y) -> p(Y). W: a(X), b(X) -> c(X).",
        ));
        assert!(!report.weakly_acyclic);
        assert!(!report.jointly_acyclic);
        assert_eq!(report.terminating.certificate(), Some(&Certificate::Mfa));
        assert_eq!(report.linear_rules, vec![0, 1]);
        assert!(report.linear_fragment.is_certified());
    }

    #[test]
    fn evidence_upgrades_inconclusive_verdicts() {
        let mut report = analyze(&rules("R: r(X, Y) -> r(Y, Z)."));
        assert!(!report.certified_core_bts());
        report.attach_evidence(&DynamicEvidence {
            restricted_terminated: false,
            restricted_width: WidthObservation::Plateau(1),
            core_terminated: false,
            core_width: WidthObservation::Climbing,
        });
        // bts was already certified by linearity — untouched.
        assert_eq!(report.bts.certificate(), Some(&Certificate::Linear));
        assert_eq!(
            report.core_bts,
            Verdict::Refuted(Refutation::CoreWidthDiverging)
        );
    }

    #[test]
    fn unobserved_probe_refutes_nothing() {
        // A probe horizon too short to judge must leave the verdicts
        // exactly where the static pass put them — a short profile is
        // the absence of a signal, not a divergence witness.
        let mut report = analyze(&rules("R: r(X, Y) -> r(Y, Z)."));
        let before = report.core_bts.clone();
        report.attach_evidence(&DynamicEvidence::default());
        assert_eq!(report.core_bts, before);
        assert!(!report.core_bts.is_refuted());
    }

    #[test]
    fn display_renders() {
        let report = analyze(&rules("R: r(X, Y) -> r(Y, Z)."));
        let text = report.to_string();
        assert!(text.contains("weakly acyclic:   false"));
        assert!(text.contains("⇒ bts:         certified by linear"));
        assert!(text.contains("refuted by linear-non-termination (rule 0)"));
    }

    #[test]
    fn kbounded_outcome_reported_alongside_other_certificates() {
        // Weak acyclicity wins the verdict, but the rank analysis still
        // hands the planner its round bound.
        let report = analyze(&rules("R: r(X, Y) -> s(Y, Z). S: s(X, Y) -> t(X)."));
        assert_eq!(
            report.terminating.certificate(),
            Some(&Certificate::WeaklyAcyclic)
        );
        assert!(matches!(
            report.kbounded,
            KBoundedOutcome::Bounded { k: 2, .. }
        ));
    }

    #[test]
    fn kbounded_route_does_not_rescue_divergence() {
        // A diverging non-linear ruleset must stay at the evidence
        // level: the rank analysis exhausts its budget on the diverging
        // critical chase and certifies nothing.
        let report = analyze(&rules(
            "R1: p(X), seed(X) -> q(X, Z). R2: q(X, Z) -> p(Z), seed(Z).",
        ));
        assert!(!report.terminating.is_certified());
        assert!(matches!(
            report.kbounded,
            KBoundedOutcome::BudgetExhausted { .. }
        ));
    }
}
