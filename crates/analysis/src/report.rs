//! Combined static-analysis report for a ruleset.

use std::fmt;

use chase_engine::RuleSet;

use crate::acyclicity::{jointly_acyclic, weakly_acyclic};
use crate::guards::{guardedness, Guardedness};

/// Everything the static analyses can certify about a ruleset, with the
/// class memberships they imply (Figure 1 vocabulary).
#[derive(Clone, Debug)]
pub struct RulesetReport {
    /// Is every rule datalog (no existential variables)?
    pub datalog: bool,
    /// Weak acyclicity (Fagin et al.).
    pub weakly_acyclic: bool,
    /// Joint acyclicity (Krötzsch & Rudolph).
    pub jointly_acyclic: bool,
    /// Guardedness classification.
    pub guardedness: Guardedness,
}

impl RulesetReport {
    /// Does some syntactic certificate guarantee **fes** membership
    /// (chase termination on every fact base)?
    pub fn certified_fes(&self) -> bool {
        self.datalog || self.weakly_acyclic || self.jointly_acyclic
    }

    /// Does some syntactic certificate guarantee **bts** membership
    /// (a treewidth-bounded restricted chase on every fact base)?
    pub fn certified_bts(&self) -> bool {
        // fes ⊆ "every chase is finite" ⇒ trivially bounded; plus the
        // guarded family.
        self.certified_fes()
            || self.guardedness.is_guarded()
            || self.guardedness.is_frontier_guarded()
            || self.guardedness.is_linear()
    }

    /// Does some certificate guarantee **core-bts** membership? Per
    /// Proposition 13 core-bts subsumes both fes and bts, so any
    /// certificate for either suffices.
    pub fn certified_core_bts(&self) -> bool {
        self.certified_fes() || self.certified_bts()
    }
}

impl fmt::Display for RulesetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "datalog:          {}", self.datalog)?;
        writeln!(f, "weakly acyclic:   {}", self.weakly_acyclic)?;
        writeln!(f, "jointly acyclic:  {}", self.jointly_acyclic)?;
        writeln!(f, "guarded:          {}", self.guardedness.is_guarded())?;
        writeln!(
            f,
            "frontier-guarded: {}",
            self.guardedness.is_frontier_guarded()
        )?;
        writeln!(f, "⇒ fes certified:      {}", self.certified_fes())?;
        writeln!(f, "⇒ bts certified:      {}", self.certified_bts())?;
        write!(f, "⇒ core-bts certified: {}", self.certified_core_bts())
    }
}

/// Runs every static analysis on a ruleset.
pub fn analyze(rules: &RuleSet) -> RulesetReport {
    RulesetReport {
        datalog: rules.iter().all(|(_, r)| r.is_datalog()),
        weakly_acyclic: weakly_acyclic(rules),
        jointly_acyclic: jointly_acyclic(rules),
        guardedness: guardedness(rules),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_parser::parse_program;

    fn rules(src: &str) -> RuleSet {
        parse_program(src).expect("parses").rules
    }

    #[test]
    fn datalog_certifies_everything() {
        let report = analyze(&rules("T: r(X, Y), r(Y, Z) -> r(X, Z)."));
        assert!(report.datalog);
        assert!(report.certified_fes());
        assert!(report.certified_bts());
        assert!(report.certified_core_bts());
    }

    #[test]
    fn linear_chain_certifies_bts_not_fes() {
        let report = analyze(&rules("R: r(X, Y) -> r(Y, Z)."));
        assert!(!report.certified_fes());
        assert!(report.certified_bts(), "linear rules are guarded ⇒ bts");
        assert!(report.certified_core_bts());
    }

    #[test]
    fn unguarded_cyclic_ruleset_certifies_nothing() {
        let report = analyze(&rules("Fill: h(X, Y), v(X, X2) -> h(X2, Y2), v(Y, Y2)."));
        assert!(!report.certified_fes());
        assert!(!report.certified_bts());
        assert!(!report.certified_core_bts());
    }

    #[test]
    fn weakly_acyclic_existential_ruleset() {
        let report = analyze(&rules("R: r(X, Y) -> s(Y, Z). S: s(X, Y) -> t(X)."));
        assert!(!report.datalog);
        assert!(report.weakly_acyclic);
        assert!(report.certified_fes());
    }

    #[test]
    fn display_renders() {
        let report = analyze(&rules("R: r(X, Y) -> r(Y, Z)."));
        let text = report.to_string();
        assert!(text.contains("weakly acyclic:   false"));
        assert!(text.contains("bts certified:      true"));
    }
}
