//! Complexity-aware budget envelopes for admitted jobs.
//!
//! Hanisch & Krötzsch ("Chase Termination Beyond Polynomial Time")
//! observe that *termination* certificates come with *price tags*: a
//! datalog saturation is polynomial in the fact base, a k-bounded
//! ruleset is linear in the instance per round with a uniform round
//! count, while a merely-terminating ruleset (weak/joint acyclicity,
//! MFA, the linear decision) can legitimately run for exponentially
//! many steps, and a bts-only ruleset may not terminate at all. A flat
//! admission cap — the old `max_apps ≤ 1000` tightening — prices all
//! of these identically, starving certified-but-expensive jobs and
//! over-provisioning refuted ones.
//!
//! [`cost_model`] maps a [`CostClass`] (derived from the analyzer's
//! certificate) × [`RulesetShape`] (arity, SCC structure, guardedness)
//! to a [`BudgetEnvelope`] `{max_apps, mem_soft, mem_hard, deadline}`.
//! The envelopes are deliberately coarse — admission control wants
//! order-of-magnitude fairness, not exact complexity bounds — but they
//! are *monotone in the complexity tier*: a better certificate never
//! gets a smaller envelope, and `Open` (no certificate, or refuted)
//! reproduces the old tight caps exactly.

use std::time::Duration;

use chase_engine::{ChaseConfig, RuleSet};

use crate::depgraph::DepGraph;
use crate::guards::{guard_kind, GuardKind};

/// The static shape parameters the cost model prices by.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RulesetShape {
    /// Number of rules.
    pub rules: usize,
    /// Maximum predicate arity mentioned anywhere.
    pub max_arity: usize,
    /// SCC count of the rule dependency graph (stratification width).
    pub scc_count: usize,
    /// SCCs containing a dependency cycle (potential fixpoint loops).
    pub cyclic_sccs: usize,
    /// Weakest guard kind over all rules (Linear is strongest).
    pub worst_guard: GuardKind,
    /// Whether every rule is existential-free.
    pub datalog: bool,
}

impl RulesetShape {
    /// Measures `rules`.
    pub fn of(rules: &RuleSet) -> Self {
        let cond = DepGraph::build(rules).condensation(rules);
        let max_arity = rules
            .iter()
            .flat_map(|(_, r)| r.body().iter().chain(r.head().iter()))
            .map(chase_atoms::Atom::arity)
            .max()
            .unwrap_or(0);
        let worst_guard = rules
            .iter()
            .map(|(_, r)| guard_kind(r))
            .min()
            .unwrap_or(GuardKind::Linear);
        Self {
            rules: rules.len(),
            max_arity,
            scc_count: cond.components.len(),
            cyclic_sccs: cond.components.iter().filter(|c| c.cyclic).count(),
            worst_guard,
            datalog: rules.iter().all(|(_, r)| r.is_datalog()),
        }
    }

    /// The size unit every envelope scales by: rules × max arity,
    /// floored at 1 so the empty ruleset still gets a sane envelope.
    fn unit(&self) -> usize {
        (self.rules.max(1)).saturating_mul(self.max_arity.max(1))
    }
}

/// Complexity tier of the strongest certificate the analyzer found —
/// the "class" axis of the Hanisch–Krötzsch pricing table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CostClass {
    /// Datalog saturation: PTIME data complexity, polynomially many
    /// applications in the fact base.
    Polynomial,
    /// k-bounded ([`crate::kbounded_test`]): at most `k` breadth-first
    /// rounds on every instance.
    BoundedRounds(usize),
    /// Terminating with no uniform bound (weak/joint acyclicity, MFA,
    /// the linear decision, critical-instance saturation): possibly
    /// exponentially many applications, but finitely many.
    Terminating,
    /// bts/core-bts only: the chase may diverge; querying is decidable
    /// through width-bounded exploration, so the envelope funds a
    /// bounded prefix, not a saturation.
    BoundedWidth,
    /// No certificate, or termination positively refuted: divergence
    /// is expected, cut early. Reproduces the legacy tight caps.
    Open,
}

impl CostClass {
    /// Stable wire name of the tier.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CostClass::Polynomial => "polynomial",
            CostClass::BoundedRounds(_) => "bounded-rounds",
            CostClass::Terminating => "terminating",
            CostClass::BoundedWidth => "bounded-width",
            CostClass::Open => "open",
        }
    }
}

/// The budget envelope admission writes into a job's [`ChaseConfig`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BudgetEnvelope {
    /// Ceiling on trigger applications.
    pub max_apps: usize,
    /// Soft memory ceiling (abstract units).
    pub mem_soft: usize,
    /// Hard memory ceiling (abstract units).
    pub mem_hard: usize,
    /// Wall-clock allowance for the run.
    pub deadline: Duration,
}

impl BudgetEnvelope {
    /// Writes the envelope into `cfg`: the application ceiling is set
    /// outright (the envelope *is* the budget decision), memory and
    /// wall-clock ceilings only fill unpinned slots.
    #[must_use]
    pub fn apply(&self, mut cfg: ChaseConfig) -> ChaseConfig {
        cfg.max_applications = self.max_apps;
        if cfg.mem_soft.is_none() {
            cfg.mem_soft = Some(self.mem_soft);
        }
        if cfg.mem_hard.is_none() {
            cfg.mem_hard = Some(self.mem_hard);
        }
        if cfg.max_wall.is_none() {
            cfg.max_wall = Some(self.deadline);
        }
        cfg
    }
}

/// Prices `class` for a ruleset of the given `shape`.
///
/// The guard multiplier reflects combined-complexity pricing for the
/// width-bounded tier (linear < guarded < frontier-guarded <
/// unguarded); cyclic SCCs widen the terminating tier, whose
/// exponential worst case lives exactly in those loops.
#[must_use]
pub fn cost_model(class: CostClass, shape: &RulesetShape) -> BudgetEnvelope {
    let unit = shape.unit();
    let strata = shape.scc_count.max(1);
    match class {
        CostClass::Polynomial => BudgetEnvelope {
            max_apps: unit
                .saturating_mul(unit)
                .saturating_mul(32)
                .clamp(2_000, 250_000),
            mem_soft: 16_384,
            mem_hard: 65_536,
            deadline: Duration::from_secs(10),
        },
        CostClass::BoundedRounds(k) => BudgetEnvelope {
            max_apps: (k + 1)
                .saturating_mul(unit)
                .saturating_mul(strata)
                .saturating_mul(64)
                .clamp(2_000, 100_000),
            mem_soft: 16_384,
            mem_hard: 32_768,
            deadline: Duration::from_secs(10),
        },
        CostClass::Terminating => BudgetEnvelope {
            max_apps: unit
                .saturating_mul(1 + shape.cyclic_sccs)
                .saturating_mul(4_096)
                .clamp(10_000, 1_000_000),
            mem_soft: 32_768,
            mem_hard: 131_072,
            deadline: Duration::from_secs(30),
        },
        CostClass::BoundedWidth => {
            let guard_factor = match shape.worst_guard {
                GuardKind::Linear => 1,
                GuardKind::Guarded => 2,
                GuardKind::FrontierGuarded => 4,
                GuardKind::Unguarded => 8,
            };
            BudgetEnvelope {
                max_apps: unit
                    .saturating_mul(guard_factor)
                    .saturating_mul(256)
                    .clamp(4_000, 50_000),
                mem_soft: 16_384,
                mem_hard: 32_768,
                deadline: Duration::from_secs(15),
            }
        }
        CostClass::Open => BudgetEnvelope {
            max_apps: 1_000,
            mem_soft: 8_192,
            mem_hard: 16_384,
            deadline: Duration::from_secs(5),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_parser::parse_program;

    fn rules(src: &str) -> RuleSet {
        parse_program(src).expect("parses").rules
    }

    #[test]
    fn shape_measures_the_ruleset() {
        let rs = rules("R: p(X), q(X, Y) -> r(X, Y, Z). S: r(X, Y, U) -> p(Y).");
        let shape = RulesetShape::of(&rs);
        assert_eq!(shape.rules, 2);
        assert_eq!(shape.max_arity, 3);
        assert!(!shape.datalog);
        assert!(shape.scc_count >= 1);
    }

    #[test]
    fn datalog_shape_is_detected() {
        let rs = rules("T: r(X, Y), r(Y, Z) -> r(X, Z).");
        let shape = RulesetShape::of(&rs);
        assert!(shape.datalog);
        assert_eq!(shape.worst_guard, GuardKind::Unguarded);
    }

    #[test]
    fn envelopes_are_monotone_in_tier() {
        let shape = RulesetShape::of(&rules("R: p(X) -> q(X, Z)."));
        let open = cost_model(CostClass::Open, &shape);
        let width = cost_model(CostClass::BoundedWidth, &shape);
        let term = cost_model(CostClass::Terminating, &shape);
        assert!(open.max_apps < width.max_apps);
        assert!(width.max_apps <= term.max_apps);
        assert!(open.mem_hard <= width.mem_hard);
        assert!(width.mem_hard <= term.mem_hard);
    }

    #[test]
    fn open_reproduces_the_legacy_tight_caps() {
        let shape = RulesetShape::of(&rules("R: r(X, Y) -> r(Y, Z)."));
        let env = cost_model(CostClass::Open, &shape);
        assert_eq!(env.max_apps, 1_000);
        assert_eq!(env.mem_soft, 8_192);
        assert_eq!(env.mem_hard, 16_384);
    }

    #[test]
    fn bounded_rounds_scale_with_k() {
        let shape = RulesetShape::of(&rules(
            "A: p0(X) -> p1(X). B: p1(X) -> p2(X). C: p2(X) -> p3(X). \
             D: p3(X) -> p4(X). E: p4(X) -> p5(X). F: p5(X) -> p6(X). \
             G: p6(X) -> p7(X). H: p7(X) -> p8(X).",
        ));
        let small = cost_model(CostClass::BoundedRounds(1), &shape);
        let large = cost_model(CostClass::BoundedRounds(64), &shape);
        assert!(small.max_apps < large.max_apps);
    }

    #[test]
    fn envelope_apply_fills_unpinned_slots() {
        let shape = RulesetShape::of(&rules("C: p(X) -> q(X)."));
        let env = cost_model(CostClass::Polynomial, &shape);
        let cfg = env.apply(ChaseConfig::default());
        assert_eq!(cfg.max_applications, env.max_apps);
        assert_eq!(cfg.mem_soft, Some(env.mem_soft));
        assert_eq!(cfg.mem_hard, Some(env.mem_hard));
        assert_eq!(cfg.max_wall, Some(env.deadline));
        // Pinned memory survives.
        let pinned = env.apply(ChaseConfig::default().with_mem_soft(7));
        assert_eq!(pinned.mem_soft, Some(7));
    }
}
