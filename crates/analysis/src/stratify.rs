//! Stratified chase plans from the dependency-graph condensation.
//!
//! The condensation of the rule dependency graph is a DAG of SCCs in
//! producers-first order; running the chase stratum by stratum (each
//! stratum saturated before the next starts) is sound because a rule
//! in a later stratum can never feed an earlier one. The payoff is that
//! each stratum can get the *cheapest strategy that is safe for it*:
//!
//! * acyclic or weakly-acyclic strata terminate on their own — plain
//!   oblivious/restricted expansion, no core maintenance;
//! * cyclic datalog strata saturate — plain saturation;
//! * cyclic existential strata are where divergence lives. Guarded ones
//!   keep a treewidth-bounded restricted chase; otherwise dynamic
//!   width evidence ([`DynamicEvidence`]) picks between a restricted
//!   chase with a width plateau (the elevator `K_v`) and core
//!   maintenance with tight memory ceilings (the staircase `K_h` —
//!   core width plateaus while the restricted chase balloons). The two
//!   paper rulesets land in **distinct** plan shapes by construction.

use std::fmt;

use chase_engine::{ChaseConfig, ChaseVariant, CoreMaintenance, RuleId, RuleSet, SchedulerKind};

use crate::depgraph::DepGraph;
use crate::guards::GuardKind;
use crate::report::DynamicEvidence;

/// The strategy shape assigned to one stratum.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StratumShape {
    /// Datalog rules (cyclic or not): saturation terminates on finite
    /// instances, no nulls, no core maintenance.
    DatalogSaturation,
    /// Acyclic or weakly-acyclic existential stratum: the chase
    /// terminates; run it as plain expansion.
    TerminatingExpansion,
    /// Cyclic existential stratum whose rules are all (frontier-)
    /// guarded: the restricted chase keeps bounded treewidth.
    GuardedLoop,
    /// Cyclic unguarded stratum where dynamic evidence shows the
    /// *restricted* chase width plateauing (elevator-like): run the
    /// restricted chase, skip core maintenance.
    BoundedWidthLoop,
    /// Cyclic unguarded stratum where dynamic evidence shows the *core*
    /// chase width plateauing while the restricted chase balloons
    /// (staircase-like): core maintenance with tight ceilings.
    CoreBoundedLoop,
    /// Cyclic unguarded stratum with no decidability route in sight:
    /// core maintenance as damage control under tight ceilings.
    UnboundedFrontier,
}

impl StratumShape {
    /// Stable kebab-case name for reports and wire formats.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            StratumShape::DatalogSaturation => "datalog-saturation",
            StratumShape::TerminatingExpansion => "terminating-expansion",
            StratumShape::GuardedLoop => "guarded-loop",
            StratumShape::BoundedWidthLoop => "bounded-width-loop",
            StratumShape::CoreBoundedLoop => "core-bounded-loop",
            StratumShape::UnboundedFrontier => "unbounded-frontier",
        }
    }

    /// Does this shape need core maintenance?
    #[must_use]
    pub fn needs_core(self) -> bool {
        matches!(
            self,
            StratumShape::CoreBoundedLoop | StratumShape::UnboundedFrontier
        )
    }
}

/// One stratum of a chase plan: a set of rules run to saturation
/// before the next stratum starts.
#[derive(Clone, Debug)]
pub struct Stratum {
    /// Member rules, ascending by id.
    pub rules: Vec<RuleId>,
    /// Can the stratum feed itself?
    pub cyclic: bool,
    /// Strategy shape.
    pub shape: StratumShape,
}

/// A stratified chase plan.
#[derive(Clone, Debug)]
pub struct ChasePlan {
    /// Strata in execution order.
    pub strata: Vec<Stratum>,
    /// Hard application ceiling carried by a certificate (a
    /// k-boundedness bound priced through the cost model). `None` when
    /// no certificate bounds the run; [`ChasePlan::apply`] only ever
    /// *lowers* the configured ceiling with it.
    pub max_apps: Option<usize>,
}

impl ChasePlan {
    /// The rule-id partition in execution order, the format consumed by
    /// `ChaseConfig::with_strata`.
    #[must_use]
    pub fn partition(&self) -> Vec<Vec<RuleId>> {
        self.strata.iter().map(|s| s.rules.clone()).collect()
    }

    /// The worst (most expensive) shape in the plan.
    #[must_use]
    pub fn worst_shape(&self) -> Option<StratumShape> {
        self.strata.iter().map(|s| s.shape).max_by_key(|s| *s as u8)
    }

    /// The chase variant the plan recommends for the whole run.
    #[must_use]
    pub fn recommended_variant(&self) -> ChaseVariant {
        if self.strata.iter().any(|s| s.shape.needs_core()) {
            ChaseVariant::Core
        } else {
            ChaseVariant::Restricted
        }
    }

    /// The trigger-ordering strategy the plan recommends, from its
    /// worst shape. All scheduler kinds preserve fairness (the round
    /// structure does); the choice only biases *which* fair sequence is
    /// built: terminating plans keep the deterministic order, guarded
    /// loops saturate datalog before minting nulls, width-bounded and
    /// open-ended loops defer null-propagating triggers so satisfaction
    /// checks prune the deeper chains.
    #[must_use]
    pub fn recommended_scheduler(&self) -> SchedulerKind {
        match self.worst_shape() {
            None | Some(StratumShape::DatalogSaturation | StratumShape::TerminatingExpansion) => {
                SchedulerKind::Deterministic
            }
            Some(StratumShape::GuardedLoop) => SchedulerKind::ExistentialLast,
            Some(
                StratumShape::BoundedWidthLoop
                | StratumShape::CoreBoundedLoop
                | StratumShape::UnboundedFrontier,
            ) => SchedulerKind::NullAverse,
        }
    }

    /// Attaches a certificate-derived application ceiling.
    #[must_use]
    pub fn with_max_apps(mut self, n: usize) -> Self {
        self.max_apps = Some(n);
        self
    }

    /// Applies the plan to a chase configuration: sets the variant, the
    /// stratified rule schedule, the trigger-ordering strategy, core
    /// maintenance mode, and (when a certificate bounds the run) caps
    /// the application budget.
    #[must_use]
    pub fn apply(&self, mut cfg: ChaseConfig) -> ChaseConfig {
        cfg.variant = self.recommended_variant();
        cfg.strata = Some(self.partition());
        cfg.scheduler = self.recommended_scheduler();
        if cfg.variant == ChaseVariant::Core {
            cfg.core_maintenance = CoreMaintenance::Incremental;
        }
        if let Some(n) = self.max_apps {
            cfg.max_applications = cfg.max_applications.min(n);
        }
        cfg
    }

    /// Human-readable plan summary, e.g.
    /// `datalog-saturation[R4] → core-bounded-loop[R1,R2]`.
    #[must_use]
    pub fn describe(&self, rules: &RuleSet) -> String {
        self.strata
            .iter()
            .map(|s| {
                let names: Vec<&str> = s.rules.iter().map(|&r| rules.get(r).name()).collect();
                format!("{}[{}]", s.shape.name(), names.join(","))
            })
            .collect::<Vec<_>>()
            .join(" → ")
    }
}

impl fmt::Display for ChasePlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.strata.iter().enumerate() {
            if i > 0 {
                f.write_str(" → ")?;
            }
            write!(f, "{}{:?}", s.shape.name(), s.rules)?;
        }
        Ok(())
    }
}

/// Builds a stratified plan from static analysis alone.
#[must_use]
pub fn stratified_plan(rules: &RuleSet) -> ChasePlan {
    stratified_plan_with(rules, None)
}

/// Builds a stratified plan, applying one whole-KB [`DynamicEvidence`]
/// uniformly to every cyclic unguarded stratum.
///
/// Uniform evidence is only faithful when the ruleset has (at most) one
/// such stratum: a KB containing both an elevator-like and a
/// staircase-like component would get the same shape for both. Callers
/// that can probe sub-rulesets should use [`stratified_plan_probed`],
/// which asks for evidence per stratum.
#[must_use]
pub fn stratified_plan_with(rules: &RuleSet, evidence: Option<&DynamicEvidence>) -> ChasePlan {
    build_plan(rules, &mut |_| evidence.cloned())
}

/// Builds a stratified plan, calling `probe` once per cyclic unguarded
/// SCC (with the member rule ids) to obtain width evidence *for that
/// component* — so two components with opposite chase behaviour land in
/// their own shapes instead of sharing whichever evidence the whole KB
/// happened to produce.
pub fn stratified_plan_probed(
    rules: &RuleSet,
    mut probe: impl FnMut(&[RuleId]) -> DynamicEvidence,
) -> ChasePlan {
    build_plan(rules, &mut |scc| Some(probe(scc)))
}

fn build_plan(
    rules: &RuleSet,
    evidence_for: &mut dyn FnMut(&[RuleId]) -> Option<DynamicEvidence>,
) -> ChasePlan {
    let cond = DepGraph::build(rules).condensation(rules);
    let mut strata: Vec<Stratum> = Vec::new();
    for scc in cond.components {
        let shape = if scc.datalog {
            StratumShape::DatalogSaturation
        } else if !scc.cyclic || scc.weakly_acyclic {
            StratumShape::TerminatingExpansion
        } else if scc.worst_guard >= GuardKind::FrontierGuarded {
            StratumShape::GuardedLoop
        } else {
            match evidence_for(&scc.rules) {
                Some(ev) if ev.restricted_width.plateau().is_some() || ev.restricted_terminated => {
                    StratumShape::BoundedWidthLoop
                }
                Some(ev) if ev.core_width.plateau().is_some() || ev.core_terminated => {
                    StratumShape::CoreBoundedLoop
                }
                _ => StratumShape::UnboundedFrontier,
            }
        };
        // Merge runs of equally-shaped strata to keep plans compact; the
        // merged stratum stays sound (a coarser partition only delays
        // saturation checks).
        match strata.last_mut() {
            Some(prev) if prev.shape == shape => {
                prev.rules.extend(scc.rules);
                prev.cyclic |= scc.cyclic;
            }
            _ => strata.push(Stratum {
                rules: scc.rules,
                cyclic: scc.cyclic,
                shape,
            }),
        }
    }
    ChasePlan {
        strata,
        max_apps: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::WidthObservation;
    use chase_parser::parse_program;

    fn rules(src: &str) -> RuleSet {
        parse_program(src).expect("parses").rules
    }

    #[test]
    fn weakly_acyclic_plan_terminates_without_core() {
        let rs = rules("R: r(X, Y) -> s(Y, Z). S: s(X, Y) -> t(X).");
        let plan = stratified_plan(&rs);
        // R is an acyclic existential stratum, S a datalog tail.
        assert_eq!(plan.strata.len(), 2);
        assert_eq!(plan.strata[0].shape, StratumShape::TerminatingExpansion);
        assert_eq!(plan.strata[1].shape, StratumShape::DatalogSaturation);
        assert!(plan.strata.iter().all(|s| !s.shape.needs_core()));
        assert_eq!(plan.recommended_variant(), ChaseVariant::Restricted);
    }

    #[test]
    fn datalog_tail_gets_its_own_stratum() {
        let rs = rules("A: p(X) -> q(X, Z). B: q(X, Y) -> p(Y). C: p(X), q(X, Y) -> done(X).");
        let plan = stratified_plan(&rs);
        assert_eq!(plan.strata.len(), 2);
        assert_eq!(plan.strata[0].rules, vec![0, 1]);
        assert!(plan.strata[0].cyclic);
        assert_eq!(plan.strata[1].shape, StratumShape::DatalogSaturation);
    }

    #[test]
    fn guarded_loop_detected() {
        let rs = rules("R: r(X, Y) -> r(Y, Z).");
        let plan = stratified_plan(&rs);
        assert_eq!(plan.strata.len(), 1);
        assert_eq!(plan.strata[0].shape, StratumShape::GuardedLoop);
        assert_eq!(plan.recommended_variant(), ChaseVariant::Restricted);
    }

    fn elevator_like() -> DynamicEvidence {
        DynamicEvidence {
            restricted_terminated: false,
            restricted_width: WidthObservation::Plateau(1),
            core_terminated: false,
            core_width: WidthObservation::Climbing,
        }
    }

    fn staircase_like() -> DynamicEvidence {
        DynamicEvidence {
            restricted_terminated: false,
            restricted_width: WidthObservation::Climbing,
            core_terminated: false,
            core_width: WidthObservation::Plateau(2),
        }
    }

    #[test]
    fn evidence_splits_bounded_width_from_core_bounded() {
        // An unguarded cyclic rule: shape must come from evidence.
        let src = "F: h(X, Y), v(X, X2) -> h(X2, Y2), v(Y, Y2).";
        let p1 = stratified_plan_with(&rules(src), Some(&elevator_like()));
        assert_eq!(p1.strata[0].shape, StratumShape::BoundedWidthLoop);
        assert_eq!(p1.recommended_variant(), ChaseVariant::Restricted);
        let p2 = stratified_plan_with(&rules(src), Some(&staircase_like()));
        assert_eq!(p2.strata[0].shape, StratumShape::CoreBoundedLoop);
        assert_eq!(p2.recommended_variant(), ChaseVariant::Core);
        let p3 = stratified_plan(&rules(src));
        assert_eq!(p3.strata[0].shape, StratumShape::UnboundedFrontier);
    }

    #[test]
    fn unobserved_evidence_does_not_pick_a_width_shape() {
        // An Unobserved probe (horizon too short) is no signal: the
        // stratum must fall through to damage control, exactly as if no
        // evidence had been supplied at all.
        let src = "F: h(X, Y), v(X, X2) -> h(X2, Y2), v(Y, Y2).";
        let plan = stratified_plan_with(&rules(src), Some(&DynamicEvidence::default()));
        assert_eq!(plan.strata[0].shape, StratumShape::UnboundedFrontier);
    }

    #[test]
    fn per_scc_probe_separates_mixed_components() {
        // Two independent cyclic unguarded components over disjoint
        // predicates: one elevator-like, one staircase-like. Uniform
        // whole-KB evidence forces a single shape onto both; the probed
        // plan asks per component and keeps them distinct.
        let src = "A: h(X, Y), v(X, X2) -> h(X2, Y2), v(Y, Y2).
                   B: p(X, Y), q(X, X2) -> p(X2, Y2), q(Y, Y2).";
        let rs = rules(src);
        let probed = stratified_plan_probed(&rs, |scc| {
            // Rule A (id 0) behaves elevator-like, rule B staircase-like.
            if scc.contains(&0) {
                elevator_like()
            } else {
                staircase_like()
            }
        });
        let shapes: Vec<StratumShape> = probed.strata.iter().map(|s| s.shape).collect();
        assert!(
            shapes.contains(&StratumShape::BoundedWidthLoop),
            "{shapes:?}"
        );
        assert!(
            shapes.contains(&StratumShape::CoreBoundedLoop),
            "{shapes:?}"
        );
        // The uniform-evidence path gives both components the same
        // (restricted-width) shape — the limitation the probed variant
        // exists to remove.
        let uniform = stratified_plan_with(&rs, Some(&elevator_like()));
        assert!(uniform
            .strata
            .iter()
            .all(|s| s.shape == StratumShape::BoundedWidthLoop));
    }

    #[test]
    fn plan_picks_schedulers_and_caps_applications() {
        // Guarded loop → existential-last ordering.
        let plan = stratified_plan(&rules("R: r(X, Y) -> r(Y, Z)."));
        assert_eq!(plan.recommended_scheduler(), SchedulerKind::ExistentialLast);
        // Terminating plans keep the deterministic order.
        let wa = stratified_plan(&rules("A: p(X) -> q(X)."));
        assert_eq!(wa.recommended_scheduler(), SchedulerKind::Deterministic);
        // Open-ended loop → null-averse ordering.
        let open = stratified_plan(&rules("F: h(X, Y), v(X, X2) -> h(X2, Y2), v(Y, Y2)."));
        assert_eq!(open.recommended_scheduler(), SchedulerKind::NullAverse);
        // A certificate ceiling only ever lowers the configured budget.
        let cfg = open.clone().with_max_apps(7).apply(ChaseConfig::default());
        assert_eq!(cfg.max_applications, 7);
        assert_eq!(cfg.scheduler, SchedulerKind::NullAverse);
        let cfg = open.with_max_apps(usize::MAX).apply(ChaseConfig::default());
        assert_eq!(
            cfg.max_applications,
            ChaseConfig::default().max_applications
        );
    }

    #[test]
    fn describe_names_rules_and_merges_equal_shapes() {
        // Two acyclic datalog strata merge into one compact stratum.
        let rs = rules("A: p(X) -> q(X). B: q(X) -> r(X).");
        let plan = stratified_plan(&rs);
        assert_eq!(plan.strata.len(), 1);
        let text = plan.describe(&rs);
        assert!(text.contains("datalog-saturation[A,B]"), "{text}");
    }
}
