//! Rule dependency graph via piece-unification (Baget et al.'s *graph
//! of rule dependencies*), SCC condensation, and per-SCC
//! classification.
//!
//! Rule `r₂` **depends on** `r₁` when an application of `r₁` can create
//! a new trigger for `r₂` — approximated soundly by single-atom
//! unification: some head atom of `r₁` unifies with some body atom of
//! `r₂` under the piece-unifier constraints (an existential variable of
//! the producer may only be unified with body variables of the
//! consumer and other producer existentials, never with a constant or
//! a producer frontier variable). Every genuine piece-unifier restricts
//! to such a single-atom unifier, so the graph built here is a
//! *superset* of the true dependency graph: an absent edge really means
//! independence, which is the direction stratification needs.
//!
//! The condensation of this graph (its DAG of strongly connected
//! components, in producers-first topological order) is the skeleton of
//! the stratified chase plan built by [`crate::stratify`].

use std::collections::{BTreeMap, BTreeSet};

use chase_atoms::{Atom, ConstId, Term, VarId};
use chase_engine::{Rule, RuleId, RuleSet};

use crate::acyclicity::{tarjan_scc, weakly_acyclic};
use crate::guards::{guard_kind, GuardKind};

/// The rule dependency graph: edge `p → c` when rule `c` may depend on
/// (be triggered by) rule `p`.
#[derive(Clone, Debug)]
pub struct DepGraph {
    /// `adj[p]` = consumers that producer `p` may trigger.
    adj: Vec<BTreeSet<RuleId>>,
}

impl DepGraph {
    /// Builds the dependency graph of a ruleset.
    #[must_use]
    pub fn build(rules: &RuleSet) -> Self {
        let n = rules.len();
        let mut adj: Vec<BTreeSet<RuleId>> = vec![BTreeSet::new(); n];
        for (p, producer) in rules.iter() {
            for (c, consumer) in rules.iter() {
                if may_trigger(producer, consumer) {
                    adj[p].insert(c);
                }
            }
        }
        DepGraph { adj }
    }

    /// Number of rules (vertices).
    #[must_use]
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Is the graph empty (no rules)?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Does an edge `producer → consumer` exist?
    #[must_use]
    pub fn depends(&self, producer: RuleId, consumer: RuleId) -> bool {
        self.adj[producer].contains(&consumer)
    }

    /// All edges `(producer, consumer)` in deterministic order.
    #[must_use]
    pub fn edges(&self) -> Vec<(RuleId, RuleId)> {
        let mut out = Vec::new();
        for (p, outs) in self.adj.iter().enumerate() {
            for &c in outs {
                out.push((p, c));
            }
        }
        out
    }

    /// SCC condensation with per-component classification, components in
    /// producers-first topological order.
    #[must_use]
    pub fn condensation(&self, rules: &RuleSet) -> Condensation {
        let n = self.adj.len();
        let adj_vec: Vec<Vec<usize>> = self
            .adj
            .iter()
            .map(|s| s.iter().copied().collect())
            .collect();
        let tarjan = tarjan_scc(n, &adj_vec);
        let num_comps = tarjan.iter().map(|&c| c + 1).max().unwrap_or(0);
        // Tarjan numbers components in reverse topological order (an edge
        // u → v across components has comp[v] < comp[u]); flip so that
        // producers come first.
        let comp_of: Vec<usize> = tarjan.iter().map(|&c| num_comps - 1 - c).collect();
        let mut members: Vec<Vec<RuleId>> = vec![Vec::new(); num_comps];
        for (rule, &comp) in comp_of.iter().enumerate() {
            members[comp].push(rule);
        }
        let components = members
            .into_iter()
            .map(|rule_ids| {
                let cyclic = rule_ids.len() > 1 || rule_ids.iter().any(|&r| self.depends(r, r));
                let sub: RuleSet = rule_ids.iter().map(|&r| rules.get(r).clone()).collect();
                let datalog = rule_ids.iter().all(|&r| rules.get(r).is_datalog());
                let wa = weakly_acyclic(&sub);
                let worst_guard = rule_ids
                    .iter()
                    .map(|&r| guard_kind(rules.get(r)))
                    .min()
                    .unwrap_or(GuardKind::Linear);
                SccInfo {
                    rules: rule_ids,
                    cyclic,
                    datalog,
                    weakly_acyclic: wa,
                    worst_guard,
                }
            })
            .collect();
        Condensation {
            comp_of,
            components,
        }
    }
}

/// The condensation of a [`DepGraph`]: its DAG of strongly connected
/// components in producers-first topological order.
#[derive(Clone, Debug)]
pub struct Condensation {
    /// Component index (into [`Condensation::components`]) of each rule.
    pub comp_of: Vec<usize>,
    /// Components in execution (producers-first topological) order.
    pub components: Vec<SccInfo>,
}

/// Classification of one strongly connected component of the rule
/// dependency graph.
#[derive(Clone, Debug)]
pub struct SccInfo {
    /// Member rules, ascending by id.
    pub rules: Vec<RuleId>,
    /// Can the component feed itself (size > 1, or a self-loop)?
    pub cyclic: bool,
    /// Are all member rules datalog (no existentials)?
    pub datalog: bool,
    /// Is the member sub-ruleset weakly acyclic on its own?
    pub weakly_acyclic: bool,
    /// The weakest guard kind among member rules.
    pub worst_guard: GuardKind,
}

/// Can an application of `producer` create a new trigger for
/// `consumer`? Sound over-approximation by single-atom unification.
#[must_use]
pub fn may_trigger(producer: &Rule, consumer: &Rule) -> bool {
    producer
        .head()
        .iter()
        .any(|h| consumer.body().iter().any(|b| atoms_unify(h, producer, b)))
}

/// Term key in the unification partition. Constants are shared between
/// the two rules; variables are kept apart per side.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Key {
    Const(ConstId),
    Producer(VarId),
    Consumer(VarId),
}

/// Unifies the producer's head atom with the consumer's body atom under
/// the piece-unifier constraints: no class may contain two distinct
/// constants, and a class containing a producer *existential* variable
/// may contain neither a constant, nor a producer *frontier* variable,
/// nor a *different* producer existential (each existential mints its
/// own fresh null per application, and two distinct fresh nulls — or a
/// null and anything pre-existing — can never be forced equal).
fn atoms_unify(head: &Atom, producer: &Rule, body: &Atom) -> bool {
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }

    if head.pred() != body.pred() || head.arity() != body.arity() {
        return false;
    }
    let mut index: BTreeMap<Key, usize> = BTreeMap::new();
    let mut parent: Vec<usize> = Vec::new();
    let mut key_of = |t: Term, producer_side: bool, parent: &mut Vec<usize>| -> usize {
        let key = match t {
            Term::Const(c) => Key::Const(c),
            Term::Var(v) if producer_side => Key::Producer(v),
            Term::Var(v) => Key::Consumer(v),
        };
        *index.entry(key).or_insert_with(|| {
            parent.push(parent.len());
            parent.len() - 1
        })
    };

    for (&ht, &bt) in head.args().iter().zip(body.args()) {
        let a = key_of(ht, true, &mut parent);
        let b = key_of(bt, false, &mut parent);
        let ra = find(&mut parent, a);
        let rb = find(&mut parent, b);
        if ra != rb {
            parent[ra] = rb;
        }
    }

    // Aggregate per-class attributes and check the constraints.
    let n = parent.len();
    let mut constant: Vec<Option<ConstId>> = vec![None; n];
    let mut existential: Vec<Option<VarId>> = vec![None; n];
    let mut frontier = vec![false; n];
    for (&key, &i) in &index {
        let root = find(&mut parent, i);
        match key {
            Key::Const(c) => {
                if let Some(prev) = constant[root] {
                    if prev != c {
                        return false;
                    }
                } else {
                    constant[root] = Some(c);
                }
            }
            Key::Producer(v) => {
                if producer.existential_vars().contains(&v) {
                    if let Some(prev) = existential[root] {
                        if prev != v {
                            return false;
                        }
                    } else {
                        existential[root] = Some(v);
                    }
                } else {
                    frontier[root] = true;
                }
            }
            Key::Consumer(_) => {}
        }
    }
    (0..n)
        .all(|root| !(existential[root].is_some() && (constant[root].is_some() || frontier[root])))
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_parser::parse_program;

    fn rules(src: &str) -> RuleSet {
        parse_program(src).expect("parses").rules
    }

    #[test]
    fn datalog_chain_orders_producers_first() {
        // a feeds b feeds c; no cycles.
        let rs = rules("A: p(X) -> q(X). B: q(X) -> r(X). C: r(X) -> s(X).");
        let g = DepGraph::build(&rs);
        assert!(g.depends(0, 1));
        assert!(g.depends(1, 2));
        assert!(!g.depends(1, 0));
        let cond = g.condensation(&rs);
        assert_eq!(cond.components.len(), 3);
        assert_eq!(cond.components[0].rules, vec![0]);
        assert_eq!(cond.components[2].rules, vec![2]);
        assert!(cond.components.iter().all(|c| !c.cyclic && c.datalog));
        // comp_of is consistent with execution order.
        assert!(cond.comp_of[0] < cond.comp_of[1]);
        assert!(cond.comp_of[1] < cond.comp_of[2]);
    }

    #[test]
    fn existential_does_not_unify_with_constant() {
        // R produces q(X, Z) with Z existential; S requires q(Y, a):
        // the null Z can never equal the constant a, so S does not
        // depend on R.
        let rs = rules("R: p(X) -> q(X, Z). S: q(Y, a) -> r(Y).");
        let g = DepGraph::build(&rs);
        assert!(!g.depends(0, 1));
    }

    #[test]
    fn existential_does_not_unify_with_frontier_join() {
        // R produces q(X, Z), Z existential and X frontier; a body atom
        // q(U, U) would need Z ≡ X — forbidden.
        let rs = rules("R: p(X) -> q(X, Z). S: q(U, U) -> r(U).");
        let g = DepGraph::build(&rs);
        assert!(!g.depends(0, 1));
        // But q(U, V) is fine.
        let rs2 = rules("R: p(X) -> q(X, Z). S: q(U, V) -> r(U).");
        assert!(DepGraph::build(&rs2).depends(0, 1));
    }

    #[test]
    fn distinct_existentials_never_merge() {
        // Head h(Z1, Z2), both existential, against body h(U, U): the
        // body's repeated variable would need Z1 ≡ Z2, but each
        // existential mints its own fresh null per application and two
        // distinct fresh nulls are never equal — no edge.
        let rs = rules("R: p(X) -> h(Z1, Z2). S: h(U, U) -> r(U).");
        assert!(!DepGraph::build(&rs).depends(0, 1));
    }

    #[test]
    fn repeated_existential_unifies_with_a_repeated_body_variable() {
        // Head h(Z, Z) repeats ONE existential: the single fresh null
        // fills both positions, so h(U, U) does match — edge stays.
        let rs = rules("R: p(X) -> h(Z, Z). S: h(U, U) -> r(U).");
        assert!(DepGraph::build(&rs).depends(0, 1));
    }

    #[test]
    fn head_constant_blocks_existential_join_through_body_repetition() {
        // Head h(a, Z): body h(U, U) would need Z ≡ a via U — a fresh
        // null never equals a constant, so no edge. Body h(a, V) only
        // touches the null through V: edge.
        let rs = rules("R: p(X) -> h(a, Z). S: h(U, U) -> r(U). T: h(a, V) -> s(V).");
        let g = DepGraph::build(&rs);
        assert!(!g.depends(0, 1));
        assert!(g.depends(0, 2));
    }

    #[test]
    fn two_head_constants_cannot_feed_one_body_variable() {
        // Head q(a, b) against body q(V, V): V ≡ a and V ≡ b puts two
        // distinct constants in one class — no edge.
        let rs = rules("A: p(X) -> q(a, b). B: q(V, V) -> r(V). C: q(W, b) -> s(W).");
        let g = DepGraph::build(&rs);
        assert!(!g.depends(0, 1));
        assert!(g.depends(0, 2));
    }

    #[test]
    fn self_loop_marks_cyclic() {
        let rs = rules("R: r(X, Y) -> r(Y, Z).");
        let g = DepGraph::build(&rs);
        assert!(g.depends(0, 0));
        let cond = g.condensation(&rs);
        assert_eq!(cond.components.len(), 1);
        assert!(cond.components[0].cyclic);
        assert!(!cond.components[0].datalog);
    }

    #[test]
    fn mutual_recursion_collapses_to_one_component() {
        let rs = rules("A: p(X) -> q(X, Z). B: q(X, Y) -> p(Y). C: p(X) -> done(X).");
        let g = DepGraph::build(&rs);
        let cond = g.condensation(&rs);
        assert_eq!(cond.components.len(), 2);
        assert_eq!(cond.components[0].rules, vec![0, 1]);
        assert!(cond.components[0].cyclic);
        assert_eq!(cond.components[1].rules, vec![2]);
        assert!(!cond.components[1].cyclic);
    }

    #[test]
    fn constants_shared_across_sides() {
        // Head r(a) unifies with body r(a) but not r(b).
        let rs = rules("A: p(X) -> r(a). B: r(a) -> s(X0). C: r(b) -> t(X1).");
        let g = DepGraph::build(&rs);
        assert!(g.depends(0, 1));
        assert!(!g.depends(0, 2));
    }
}
