//! k-boundedness certificates for the breadth-first chase.
//!
//! A ruleset is *k-bounded* (Delivorias, Leclère, Mugnier, Ulliana,
//! IJCAI 2018) when on **every** instance the breadth-first chase
//! saturates within `k` rounds — equivalently, every derived atom has
//! breadth-first rank at most `k`. k-boundedness implies fes with a
//! budget that is uniform across fact bases, which is exactly what an
//! admission gate wants: the certificate converts into a hard
//! application bound instead of a heuristic one.
//!
//! The test here runs the semi-oblivious (Skolem) chase from the
//! critical instance to saturation under the shared [`SearchBudget`],
//! then performs a *rank analysis* on the saturated run:
//!
//! * every trigger of the final instance is assigned the rank
//!   `1 + max(rank of its body atoms)`;
//! * every atom is assigned `max(0, max(rank of the triggers that
//!   output it))` — the `0` floor accounts for instances that contain
//!   the atom's image directly.
//!
//! Because the chase of any instance embeds homomorphically into the
//! critical chase (Marnette, PODS 2009) and the embedding maps round-r
//! applications to triggers of rank ≤ r, the maximum trigger rank `k`
//! bounds the breadth-first round count of **every** instance:
//! `Certified(KBounded{k})` is sound. The analysis is conservative in
//! the other direction: a cycle in the rank graph (an atom feeding a
//! trigger that re-outputs it, as in transitive closure) makes the
//! abstract ranks unbounded and the test reports
//! [`KBoundedOutcome::DepthUnbounded`] — *no certificate*, not a
//! refutation, since the concrete chase may still be bounded (e.g. a
//! rule copying an atom onto itself).

use std::collections::HashMap;

use chase_atoms::{Atom, Term, Vocabulary};
use chase_engine::{all_triggers, apply_trigger, RuleId, RuleSet};
use chase_homomorphism::SearchBudget;

use crate::critical::{atom_cap, critical_instance_capped};

/// Applications allowed when the budget carries no node limit.
const DEFAULT_APPLICATIONS: usize = 10_000;

/// Outcome of the k-boundedness test.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KBoundedOutcome {
    /// The critical chase saturated and its rank graph is acyclic: the
    /// breadth-first chase of **every** instance saturates within `k`
    /// rounds.
    Bounded {
        /// Maximum breadth-first rank over all triggers of the
        /// saturated critical chase — the certified round bound.
        k: usize,
        /// Trigger applications used by the critical chase.
        applications: usize,
    },
    /// The rank graph of the saturated critical chase is cyclic: the
    /// abstraction cannot bound derivation depth. Not a refutation —
    /// datalog saturation (e.g. transitive closure) lands here even
    /// though its chase terminates on every instance.
    DepthUnbounded {
        /// Trigger applications used by the critical chase.
        applications: usize,
    },
    /// Budget (node limit, deadline or cancellation) exhausted before
    /// the critical chase saturated.
    BudgetExhausted {
        /// Trigger applications performed before giving up.
        applications: usize,
    },
}

/// A fired application's identity: the semi-oblivious frontier key.
type FrontierKey = (RuleId, Vec<(chase_atoms::VarId, Term)>);

/// Runs the k-boundedness test for `rules` under `budget`.
///
/// Like [`crate::mfa_test`], the critical instance is materialized
/// under an atom ceiling derived from the budget, so a high-arity
/// ruleset is reported [`KBoundedOutcome::BudgetExhausted`] up front
/// instead of stalling on construction.
#[must_use]
pub fn kbounded_test(rules: &RuleSet, budget: &SearchBudget) -> KBoundedOutcome {
    let mut vocab = Vocabulary::new();
    let max_applications = budget.node_limit.unwrap_or(DEFAULT_APPLICATIONS);
    let Some(mut instance) =
        critical_instance_capped(&mut vocab, rules, atom_cap(max_applications))
    else {
        return KBoundedOutcome::BudgetExhausted { applications: 0 };
    };

    // Phase 1: saturate the Skolem chase, recording the output atoms of
    // each frontier key (Skolem semantics: duplicate keys share them).
    let mut outputs: HashMap<FrontierKey, Vec<Atom>> = HashMap::new();
    let mut applications = 0usize;
    loop {
        let mut progressed = false;
        let triggers = all_triggers(rules, &instance);
        for tr in triggers {
            let key = tr.frontier_key(rules);
            if outputs.contains_key(&key) {
                continue;
            }
            if applications >= max_applications || budget.interrupted() {
                return KBoundedOutcome::BudgetExhausted { applications };
            }
            let rule = rules.get(tr.rule);
            let app = apply_trigger(&mut vocab, rules, &instance, &tr);
            applications += 1;
            let out = rule
                .head()
                .iter()
                .map(|atom| app.pi_safe.apply_atom(atom))
                .collect();
            outputs.insert(key, out);
            instance = app.result;
            progressed = true;
        }
        if !progressed {
            break;
        }
    }

    // Phase 2: build the bipartite rank graph over the saturated run.
    // Atom nodes are interned; trigger nodes depend on their body
    // atoms, atom nodes depend on every trigger that outputs them.
    let mut atom_ids: HashMap<Atom, usize> = HashMap::new();
    let mut atom_deps: Vec<Vec<usize>> = Vec::new();
    let mut trigger_deps: Vec<Vec<usize>> = Vec::new();
    let mut intern = |atom: Atom, deps: &mut Vec<Vec<usize>>| -> usize {
        let next = atom_ids.len();
        *atom_ids.entry(atom).or_insert_with(|| {
            deps.push(Vec::new());
            next
        })
    };
    for tr in all_triggers(rules, &instance) {
        if budget.interrupted() {
            return KBoundedOutcome::BudgetExhausted { applications };
        }
        let rule = rules.get(tr.rule);
        let tid = trigger_deps.len();
        let mut body_ids = Vec::new();
        for atom in rule.body().iter() {
            body_ids.push(intern(tr.pi.apply_atom(atom), &mut atom_deps));
        }
        trigger_deps.push(body_ids);
        // Saturation means every frontier key has fired.
        let key = tr.frontier_key(rules);
        for atom in outputs.get(&key).map_or(&[][..], Vec::as_slice) {
            let aid = intern(atom.clone(), &mut atom_deps);
            atom_deps[aid].push(tid);
        }
    }

    // Phase 3: longest path over the rank graph, with cycle detection.
    match max_trigger_rank(&atom_deps, &trigger_deps) {
        Some(k) => KBoundedOutcome::Bounded { k, applications },
        None => KBoundedOutcome::DepthUnbounded { applications },
    }
}

/// Longest-path ranks over the bipartite rank graph: atoms occupy nodes
/// `[0, n_atoms)`, triggers `[n_atoms, n)`; a trigger's rank is one more
/// than its deepest body atom, an atom's rank the deepest of its
/// producers. Returns the maximum trigger rank, or `None` when the
/// graph is cyclic (depth unbounded).
fn max_trigger_rank(atom_deps: &[Vec<usize>], trigger_deps: &[Vec<usize>]) -> Option<usize> {
    let n_atoms = atom_deps.len();
    let n = n_atoms + trigger_deps.len();
    let mut deps: Vec<Vec<usize>> = Vec::with_capacity(n);
    for producers in atom_deps {
        deps.push(producers.iter().map(|&t| n_atoms + t).collect());
    }
    for body in trigger_deps {
        deps.push(body.clone());
    }
    let mut state = vec![0u8; n]; // 0 = unvisited, 1 = on stack, 2 = done
    let mut rank = vec![0usize; n];
    let mut k = 0usize;
    for start in n_atoms..n {
        if state[start] != 0 {
            k = k.max(rank[start]);
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        state[start] = 1;
        while let Some(frame) = stack.last_mut() {
            let (node, cursor) = *frame;
            if cursor < deps[node].len() {
                frame.1 += 1;
                let child = deps[node][cursor];
                match state[child] {
                    0 => {
                        state[child] = 1;
                        stack.push((child, 0));
                    }
                    1 => return None,
                    _ => {}
                }
            } else {
                let best = deps[node].iter().map(|&c| rank[c]).max().unwrap_or(0);
                rank[node] = if node >= n_atoms { best + 1 } else { best };
                state[node] = 2;
                stack.pop();
            }
        }
        k = k.max(rank[start]);
    }
    Some(k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_parser::parse_program;

    fn rules(src: &str) -> RuleSet {
        parse_program(src).expect("parses").rules
    }

    fn budget(n: usize) -> SearchBudget {
        SearchBudget::unlimited().with_node_limit(n)
    }

    #[test]
    fn copy_rule_is_one_bounded() {
        let rs = rules("C: p(X) -> q(X).");
        assert_eq!(
            kbounded_test(&rs, &budget(100)),
            KBoundedOutcome::Bounded {
                k: 1,
                applications: 1
            }
        );
    }

    #[test]
    fn two_stage_pipeline_is_two_bounded() {
        // p→q→r chains two rounds on {p(a)} even though the critical
        // instance holds q(*) from round zero: the rank graph must
        // route q's rank through the producing trigger.
        let rs = rules("R: p(X) -> q(X). S: q(X) -> r(X).");
        assert!(matches!(
            kbounded_test(&rs, &budget(100)),
            KBoundedOutcome::Bounded { k: 2, .. }
        ));
    }

    #[test]
    fn existential_pipeline_is_bounded() {
        let rs = rules("R: r(X, Y) -> s(Y, Z). S: s(X, Y) -> t(X).");
        assert!(matches!(
            kbounded_test(&rs, &budget(200)),
            KBoundedOutcome::Bounded { k: 2, .. }
        ));
    }

    #[test]
    fn transitive_closure_is_depth_unbounded() {
        // Terminates on every instance, but the number of rounds grows
        // with the longest path: no k works, and the rank graph is
        // cyclic on the critical chase.
        let rs = rules("T: r(X, Y), r(Y, Z) -> r(X, Z).");
        assert!(matches!(
            kbounded_test(&rs, &budget(200)),
            KBoundedOutcome::DepthUnbounded { .. }
        ));
    }

    #[test]
    fn self_copy_is_conservatively_unbounded() {
        // p(X) → p(X) is trivially 1-bounded, but its own output feeds
        // its body: the abstraction declines to certify. Documented
        // over-approximation.
        let rs = rules("L: p(X) -> p(X).");
        assert!(matches!(
            kbounded_test(&rs, &budget(100)),
            KBoundedOutcome::DepthUnbounded { .. }
        ));
    }

    #[test]
    fn diverging_chain_exhausts_budget() {
        let rs = rules("R: r(X, Y) -> r(Y, Z).");
        assert!(matches!(
            kbounded_test(&rs, &budget(50)),
            KBoundedOutcome::BudgetExhausted { .. }
        ));
    }

    #[test]
    fn tiny_budget_is_inconclusive() {
        let rs = rules("R: r(X, Y) -> r(Y, Z).");
        assert_eq!(
            kbounded_test(&rs, &budget(0)),
            KBoundedOutcome::BudgetExhausted { applications: 0 }
        );
    }

    #[test]
    fn high_arity_blowup_is_inconclusive_not_materialized() {
        let rs = rules("R: p(a, b, c, d, e, f, g, h) -> q(Z).");
        let started = std::time::Instant::now();
        assert_eq!(
            kbounded_test(&rs, &budget(1_000)),
            KBoundedOutcome::BudgetExhausted { applications: 0 }
        );
        assert!(
            started.elapsed() < std::time::Duration::from_secs(5),
            "the 9^8-atom critical instance must not be enumerated"
        );
    }
}
