//! Model-faithful-acyclicity-style (MFA) termination certificates.
//!
//! Runs the semi-oblivious (Skolem) chase from the critical instance
//! and tracks, for every fresh null, the set of Skolem symbols (rule,
//! existential-variable) occurring in its term tree. The chase of any
//! instance embeds into this run, so:
//!
//! * if the run saturates with no null nesting its *own* symbol, the
//!   Skolem chase terminates on **every** instance — a certificate
//!   strictly more general than joint acyclicity (MFA ⊋ JA ⊋ WA);
//! * if some null's term tree contains its own symbol, the critical
//!   chase has begun a self-similar expansion — MFA is **refuted**, and
//!   the witness (rule, nesting depth) is reported. This refutes MFA
//!   membership, not termination itself (cyclic Skolem terms can still
//!   be produced by terminating rulesets, but in practice the witness
//!   is the divergence pattern);
//! * if the [`SearchBudget`] runs out first, the test is inconclusive.
//!
//! The search honours the shared [`SearchBudget`]: its node limit caps
//! trigger applications, and its deadline/cancel flags are polled so
//! the service can abort an admission-time analysis like any other
//! search.

use std::collections::{BTreeSet, HashMap, HashSet};

use chase_atoms::{Term, VarId, Vocabulary};
use chase_engine::{all_triggers, apply_trigger, RuleId, RuleSet};
use chase_homomorphism::SearchBudget;

use crate::critical::{atom_cap, critical_instance_capped};

/// A Skolem symbol: one existential variable of one rule.
type Symbol = (RuleId, usize);

/// Applications allowed when the budget carries no node limit.
const DEFAULT_APPLICATIONS: usize = 10_000;

/// Outcome of the MFA-style cyclic-nesting test.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MfaOutcome {
    /// The Skolem chase of the critical instance saturated without any
    /// cyclically nested Skolem term: the semi-oblivious chase
    /// terminates on every instance (certified fes).
    Acyclic {
        /// Trigger applications used.
        applications: usize,
    },
    /// A fresh null's term tree contains its own Skolem symbol — the
    /// self-similar expansion that drives non-termination.
    CyclicTerm {
        /// The rule whose existential restarted its own expansion.
        rule: RuleId,
        /// Skolem-term nesting depth at which the cycle closed.
        depth: usize,
    },
    /// Budget (node limit, deadline or cancellation) exhausted first.
    BudgetExhausted {
        /// Trigger applications performed before giving up.
        applications: usize,
    },
}

/// Runs the MFA-style test for `rules` under `budget`.
///
/// The critical instance is materialized under an atom ceiling derived
/// from the budget: a ruleset whose instance would exceed it (a
/// high-arity predicate over a handful of constants is enough to
/// describe tens of millions of atoms) is reported
/// [`MfaOutcome::BudgetExhausted`] up front, so an admission-time
/// caller never stalls on construction.
#[must_use]
pub fn mfa_test(rules: &RuleSet, budget: &SearchBudget) -> MfaOutcome {
    let mut vocab = Vocabulary::new();
    let max_applications = budget.node_limit.unwrap_or(DEFAULT_APPLICATIONS);
    let Some(mut instance) =
        critical_instance_capped(&mut vocab, rules, atom_cap(max_applications))
    else {
        return MfaOutcome::BudgetExhausted { applications: 0 };
    };

    // Per-null provenance: all Skolem symbols in the null's term tree,
    // plus its nesting depth.
    let mut symbols: HashMap<VarId, BTreeSet<Symbol>> = HashMap::new();
    let mut depth: HashMap<VarId, usize> = HashMap::new();
    let mut fired: HashSet<(RuleId, Vec<(VarId, Term)>)> = HashSet::new();
    let mut applications = 0usize;

    loop {
        let mut progressed = false;
        let triggers = all_triggers(rules, &instance);
        for tr in triggers {
            if !fired.insert(tr.frontier_key(rules)) {
                continue;
            }
            if applications >= max_applications || budget.interrupted() {
                return MfaOutcome::BudgetExhausted { applications };
            }
            let rule = rules.get(tr.rule);
            // Symbols below this application: everything in the term
            // trees of the nulls in the frontier image.
            let mut below: BTreeSet<Symbol> = BTreeSet::new();
            let mut below_depth = 0usize;
            for &x in rule.frontier_vars() {
                if let Term::Var(u) = tr.pi.apply_term(Term::Var(x)) {
                    if let Some(syms) = symbols.get(&u) {
                        below.extend(syms.iter().copied());
                        below_depth = below_depth.max(depth[&u]);
                    }
                }
            }
            let app = apply_trigger(&mut vocab, rules, &instance, &tr);
            applications += 1;
            for (j, &z) in rule.existential_vars().iter().enumerate() {
                let sym: Symbol = (tr.rule, j);
                if below.contains(&sym) {
                    return MfaOutcome::CyclicTerm {
                        rule: tr.rule,
                        depth: below_depth + 1,
                    };
                }
                if let Some(Term::Var(null)) = app.pi_safe.get(z) {
                    let mut syms = below.clone();
                    syms.insert(sym);
                    symbols.insert(null, syms);
                    depth.insert(null, below_depth + 1);
                }
            }
            instance = app.result;
            progressed = true;
        }
        if !progressed {
            return MfaOutcome::Acyclic { applications };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_parser::parse_program;

    fn rules(src: &str) -> RuleSet {
        parse_program(src).expect("parses").rules
    }

    fn budget(n: usize) -> SearchBudget {
        SearchBudget::unlimited().with_node_limit(n)
    }

    #[test]
    fn weakly_acyclic_ruleset_is_mfa() {
        let rs = rules("R: r(X, Y) -> s(Y, Z). S: s(X, Y) -> t(X).");
        assert!(matches!(
            mfa_test(&rs, &budget(200)),
            MfaOutcome::Acyclic { .. }
        ));
    }

    #[test]
    fn datalog_is_mfa() {
        let rs = rules("T: r(X, Y), r(Y, Z) -> r(X, Z).");
        assert!(matches!(
            mfa_test(&rs, &budget(200)),
            MfaOutcome::Acyclic { .. }
        ));
    }

    #[test]
    fn diverging_chain_refuted_with_witness() {
        // r(X,Y) → ∃Z. r(Y,Z): the second application nests the Skolem
        // symbol inside itself.
        let rs = rules("R: r(X, Y) -> r(Y, Z).");
        assert_eq!(
            mfa_test(&rs, &budget(200)),
            MfaOutcome::CyclicTerm { rule: 0, depth: 2 }
        );
    }

    #[test]
    fn join_blocker_terminates_beyond_acyclicity() {
        // Not weakly acyclic, but `ok` is never derived, so the null
        // never re-fires R1 (see critical.rs for the full story).
        let rs = rules("R1: p(X), ok(X) -> q(X, Z). R2: q(X, Z) -> p(Z).");
        assert!(!crate::acyclicity::weakly_acyclic(&rs));
        assert!(matches!(
            mfa_test(&rs, &budget(200)),
            MfaOutcome::Acyclic { .. }
        ));
    }

    #[test]
    fn tiny_budget_is_inconclusive() {
        let rs = rules("R: r(X, Y) -> r(Y, Z).");
        assert_eq!(
            mfa_test(&rs, &budget(0)),
            MfaOutcome::BudgetExhausted { applications: 0 }
        );
    }

    #[test]
    fn high_arity_blowup_is_inconclusive_not_materialized() {
        let rs = rules("R: p(a, b, c, d, e, f, g, h) -> q(Z).");
        let started = std::time::Instant::now();
        assert_eq!(
            mfa_test(&rs, &budget(1_000)),
            MfaOutcome::BudgetExhausted { applications: 0 }
        );
        assert!(
            started.elapsed() < std::time::Duration::from_secs(5),
            "the 9^8-atom critical instance must not be enumerated"
        );
    }

    #[test]
    fn cancel_flag_aborts() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let flag = Arc::new(AtomicBool::new(false));
        flag.store(true, Ordering::Relaxed);
        let b = SearchBudget::unlimited().with_cancel(flag.clone());
        let rs = rules("R: r(X, Y) -> r(Y, Z).");
        assert!(matches!(
            mfa_test(&rs, &b),
            MfaOutcome::BudgetExhausted { applications: 0 }
        ));
    }
}
