//! # chase-analysis
//!
//! Static analyses of existential rulesets — the classic *sufficient*
//! syntactic conditions for the abstract classes in the paper's Figure 1:
//!
//! * [`weakly_acyclic`] — Fagin, Kolaitis, Miller, Popa (TCS 2005): no
//!   cycle through a "special" edge in the position dependency graph.
//!   Weak acyclicity guarantees termination of **all** chase variants on
//!   **all** fact bases, hence membership in **fes**.
//! * [`jointly_acyclic`] — Krötzsch & Rudolph (IJCAI 2011, the paper's
//!   [16]): acyclicity of the existential-variable dependency graph; a
//!   strict generalization of weak acyclicity that still guarantees
//!   semi-oblivious chase termination (hence fes).
//! * [`guardedness`] — Calì, Gottlob, Kifer (KR 2008 / JAIR 2013, the
//!   paper's [6, 7]): a rule is *guarded* if some body atom contains all
//!   its universal variables, *frontier-guarded* if some body atom
//!   contains all its frontier variables. (Frontier-)guarded rulesets
//!   have treewidth-bounded restricted chases, hence are **bts**.
//!
//! * [`critical_instance_test`] — Marnette (PODS 2009, the paper's
//!   [17]): semi-oblivious chase termination on the *critical instance*
//!   implies termination on every instance — a dynamic fes certificate
//!   that covers rulesets beyond every acyclicity notion.
//!
//! These analyses complement the dynamic probes in
//! `chase_core::classes`: a syntactic certificate holds for *every* fact
//! base, while a probe observes one chase on one fact base.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod acyclicity;
mod critical;
mod guards;
mod report;

pub use acyclicity::{jointly_acyclic, weakly_acyclic, PositionGraph};
pub use critical::{critical_instance, critical_instance_test, CriticalOutcome};
pub use guards::{guardedness, GuardKind, Guardedness};
pub use report::{analyze, RulesetReport};
