//! # chase-analysis
//!
//! Static analyses of existential rulesets — the classic *sufficient*
//! syntactic conditions for the abstract classes in the paper's Figure 1:
//!
//! * [`weakly_acyclic`] — Fagin, Kolaitis, Miller, Popa (TCS 2005): no
//!   cycle through a "special" edge in the position dependency graph.
//!   Weak acyclicity guarantees termination of **all** chase variants on
//!   **all** fact bases, hence membership in **fes**.
//! * [`jointly_acyclic`] — Krötzsch & Rudolph (IJCAI 2011, the paper's
//!   [16]): acyclicity of the existential-variable dependency graph; a
//!   strict generalization of weak acyclicity that still guarantees
//!   semi-oblivious chase termination (hence fes).
//! * [`guardedness`] — Calì, Gottlob, Kifer (KR 2008 / JAIR 2013, the
//!   paper's [6, 7]): a rule is *guarded* if some body atom contains all
//!   its universal variables, *frontier-guarded* if some body atom
//!   contains all its frontier variables. (Frontier-)guarded rulesets
//!   have treewidth-bounded restricted chases, hence are **bts**.
//!
//! * [`critical_instance_test`] — Marnette (PODS 2009, the paper's
//!   [17]): semi-oblivious chase termination on the *critical instance*
//!   implies termination on every instance — a dynamic fes certificate
//!   that covers rulesets beyond every acyclicity notion.
//! * [`mfa_test`] — model-faithful-acyclicity-style certificates: the
//!   critical-instance Skolem chase with cyclic-term detection, which
//!   certifies fes beyond joint acyclicity and *refutes* MFA membership
//!   with a divergence witness.
//! * [`DepGraph`] / [`stratified_plan`] — the rule dependency graph by
//!   piece-unification, its SCC condensation, and the stratified chase
//!   plans derived from it.
//!
//! Everything semantic is reported through the [`Verdict`] lattice
//! (Certified / Refuted / `LikelyRefuted` / Inconclusive) with explicit
//! [`Certificate`] provenance.
//!
//! These analyses complement the dynamic probes in
//! `chase_core::classes`: a syntactic certificate holds for *every* fact
//! base, while a probe observes one chase on one fact base. Probe
//! results can be folded back in via [`RulesetReport::attach_evidence`]
//! and [`stratified_plan_with`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod acyclicity;
mod cost;
mod critical;
mod depgraph;
mod guards;
mod kbounded;
mod linear;
mod mfa;
mod report;
mod stratify;

pub use acyclicity::{jointly_acyclic, weakly_acyclic, PositionGraph};
pub use cost::{cost_model, BudgetEnvelope, CostClass, RulesetShape};
pub use critical::{
    critical_instance, critical_instance_capped, critical_instance_test, CriticalOutcome,
};
pub use depgraph::{may_trigger, Condensation, DepGraph, SccInfo};
pub use guards::{guardedness, GuardKind, Guardedness};
pub use kbounded::{kbounded_test, KBoundedOutcome};
pub use linear::{linear_fragment, linear_termination, LinearOutcome};
pub use mfa::{mfa_test, MfaOutcome};
pub use report::{
    analyze, analyze_with_budget, Certificate, DynamicEvidence, Refutation, RulesetReport, Verdict,
    WidthObservation,
};
pub use stratify::{
    stratified_plan, stratified_plan_probed, stratified_plan_with, ChasePlan, Stratum, StratumShape,
};
