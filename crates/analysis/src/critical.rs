//! The critical-instance termination test (Marnette, PODS 2009 — the
//! paper's [17]).
//!
//! For the **semi-oblivious** chase, termination on the *critical
//! instance* — the instance containing every atom `p(∗, …, ∗)` over a
//! single fresh constant `∗` — implies termination on *every* instance.
//! Intuition: every instance maps homomorphically into the critical
//! instance (send all terms to `∗`), and semi-oblivious chase steps are
//! preserved under such homomorphisms, so a diverging chase anywhere
//! yields a diverging chase on the critical instance.
//!
//! Termination of the semi-oblivious chase on all instances gives a
//! finite universal model for every fact base, i.e. certified **fes**
//! membership — a *dynamic but complete-for-all-instances* certificate,
//! strictly stronger than the per-instance probes in
//! `chase_core::classes` and incomparable to weak/joint acyclicity.

use chase_atoms::{Atom, AtomSet, Term, Vocabulary};
use chase_engine::{run_chase, ChaseConfig, ChaseVariant, RecordLevel, RuleSet};

/// The critical instance of a ruleset: one atom `p(∗, …, ∗)` per
/// predicate occurring in the rules, over a single fresh constant.
pub fn critical_instance(vocab: &mut Vocabulary, rules: &RuleSet) -> AtomSet {
    let star = vocab.constant("critical_star");
    let mut preds = std::collections::BTreeSet::new();
    for (_, rule) in rules.iter() {
        for atom in rule.body().iter().chain(rule.head().iter()) {
            preds.insert((atom.pred(), atom.arity()));
        }
    }
    preds
        .into_iter()
        .map(|(p, arity)| Atom::new(p, vec![Term::Const(star); arity]))
        .collect()
}

/// Outcome of the critical-instance test.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CriticalOutcome {
    /// The semi-oblivious chase terminated on the critical instance:
    /// **every** instance has a terminating (semi-oblivious, hence also
    /// core) chase — certified fes.
    TerminatesEverywhere {
        /// Applications used on the critical instance.
        applications: usize,
    },
    /// The budget ran out — no certificate either way (the test is only
    /// a semi-decision procedure).
    BudgetExhausted,
}

/// Runs the Marnette test with the given application budget.
pub fn critical_instance_test(rules: &RuleSet, budget: usize) -> CriticalOutcome {
    let mut vocab = Vocabulary::new();
    let facts = critical_instance(&mut vocab, rules);
    let cfg = ChaseConfig::variant(ChaseVariant::SemiOblivious)
        .with_max_applications(budget)
        .with_max_atoms(budget.saturating_mul(8).max(1_000))
        .with_record(RecordLevel::FinalOnly);
    let res = run_chase(&mut vocab, &facts, rules, &cfg);
    if res.outcome.terminated() {
        CriticalOutcome::TerminatesEverywhere {
            applications: res.stats.applications,
        }
    } else {
        CriticalOutcome::BudgetExhausted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_parser::parse_program;

    fn rules(src: &str) -> RuleSet {
        parse_program(src).expect("parses").rules
    }

    #[test]
    fn critical_instance_shape() {
        let rs = rules("R: r(X, Y) -> s(Y, Z). S: s(X, Y) -> t(X).");
        let mut vocab = Vocabulary::new();
        let ci = critical_instance(&mut vocab, &rs);
        assert_eq!(ci.len(), 3, "one atom per predicate");
        assert!(ci.vars().is_empty(), "fully ground");
        assert_eq!(ci.constants().len(), 1);
    }

    #[test]
    fn weakly_acyclic_ruleset_passes() {
        let rs = rules("R: r(X, Y) -> s(Y, Z). S: s(X, Y) -> t(X).");
        assert!(matches!(
            critical_instance_test(&rs, 200),
            CriticalOutcome::TerminatesEverywhere { .. }
        ));
    }

    #[test]
    fn datalog_passes() {
        let rs = rules("T: r(X, Y), r(Y, Z) -> r(X, Z).");
        assert!(matches!(
            critical_instance_test(&rs, 200),
            CriticalOutcome::TerminatesEverywhere { .. }
        ));
    }

    #[test]
    fn diverging_ruleset_exhausts_budget() {
        // r(X,Y) → ∃Z. r(Y,Z) diverges under the semi-oblivious chase on
        // the critical instance (each fresh null spawns a new frontier
        // class).
        let rs = rules("R: r(X, Y) -> r(Y, Z).");
        assert_eq!(
            critical_instance_test(&rs, 100),
            CriticalOutcome::BudgetExhausted
        );
    }

    #[test]
    fn critical_test_catches_termination_beyond_acyclicity() {
        // The join-blocker pattern:
        //   R1: p(X), ok(X) → ∃Z. q(X, Z)
        //   R2: q(X, Z) → p(Z)
        // Position flow: special (p,1) → (q,2), regular (q,2) → (p,1) —
        // a cycle through a special edge ⇒ not weakly acyclic. Yet no
        // rule ever creates an `ok` fact, so invented nulls can never
        // re-fire R1: the semi-oblivious chase terminates on every
        // instance, and the critical test certifies it.
        let rs = rules("R1: p(X), ok(X) -> q(X, Z). R2: q(X, Z) -> p(Z).");
        assert!(!crate::acyclicity::weakly_acyclic(&rs));
        assert!(matches!(
            critical_instance_test(&rs, 100),
            CriticalOutcome::TerminatesEverywhere { .. }
        ));

        // Variant that defeats joint acyclicity too: route the null back
        // through q's *other* column so Pos(Z) reaches every body
        // position of X, yet the join still never fires on invented
        // values because q-facts pair nulls with the old constant only…
        // p(X), q(X, X) → ∃Z. p(Z), q(Z, X): Pos(Z) = {(p,1), (q,1)};
        // X's body positions {(p,1), (q,1), (q,2)} ⊄ Pos(Z) ⇒ JA holds.
        // Keep the first (JA-certified) ruleset as the headline check and
        // assert the critical test handles a non-JA diverging case
        // correctly as well:
        let diverging = rules("R: p(X) -> e(X, Z), p(Z).");
        assert!(!crate::acyclicity::jointly_acyclic(&diverging));
        assert_eq!(
            critical_instance_test(&diverging, 60),
            CriticalOutcome::BudgetExhausted
        );
    }
}
