//! The critical-instance termination test (Marnette, PODS 2009 — the
//! paper's [17]).
//!
//! For the **semi-oblivious** chase, termination on the *critical
//! instance* — the instance containing every atom `p(∗, …, ∗)` over a
//! single fresh constant `∗` — implies termination on *every* instance.
//! Intuition: every instance maps homomorphically into the critical
//! instance (send all terms to `∗`), and semi-oblivious chase steps are
//! preserved under such homomorphisms, so a diverging chase anywhere
//! yields a diverging chase on the critical instance.
//!
//! Termination of the semi-oblivious chase on all instances gives a
//! finite universal model for every fact base, i.e. certified **fes**
//! membership — a *dynamic but complete-for-all-instances* certificate,
//! strictly stronger than the per-instance probes in
//! `chase_core::classes` and incomparable to weak/joint acyclicity.

use chase_atoms::{Atom, AtomSet, Term, Vocabulary};
use chase_engine::{run_chase_controlled, ChaseConfig, ChaseVariant, RecordLevel, RuleSet};
use chase_homomorphism::SearchBudget;

/// The critical instance of a ruleset: every atom `p(c₁, …, cₖ)` over
/// the constants occurring in the rules plus one fresh constant `∗`,
/// for each predicate occurring in the rules.
///
/// Including the rules' own constants is essential for soundness: a
/// rule body like `ok(a), …` never matches an all-`∗` instance, so
/// omitting `a` would certify termination for rulesets that diverge on
/// any fact base containing `ok(a)`.
///
/// The instance has `Σ_p |consts|^arity(p)` atoms — exponential in the
/// worst predicate arity — so anything on a latency-sensitive path must
/// use [`critical_instance_capped`], which refuses to materialize past
/// a caller-chosen ceiling.
pub fn critical_instance(vocab: &mut Vocabulary, rules: &RuleSet) -> AtomSet {
    critical_instance_capped(vocab, rules, usize::MAX).unwrap_or_default()
}

/// [`critical_instance`] with an atom ceiling: returns `None` — without
/// doing the exponential work — when the instance would exceed
/// `max_atoms`. A single rule mentioning a few constants in a
/// high-arity predicate (say `p/8` over 9 constants) describes ~43M
/// atoms; callers under a [`SearchBudget`] must bail out instead of
/// stalling on construction.
pub fn critical_instance_capped(
    vocab: &mut Vocabulary,
    rules: &RuleSet,
    max_atoms: usize,
) -> Option<AtomSet> {
    let mut preds = std::collections::BTreeSet::new();
    let mut consts = std::collections::BTreeSet::new();
    for (_, rule) in rules.iter() {
        for atom in rule.body().iter().chain(rule.head().iter()) {
            preds.insert((atom.pred(), atom.arity()));
            for t in atom.terms() {
                if let Term::Const(c) = t {
                    consts.insert(c);
                }
            }
        }
    }
    // Size check before any materialization: Σ_p |consts|^arity(p),
    // with overflow treated as "over the cap". +1 for the star below.
    let base = consts.len() as u128 + 1;
    let mut total: u128 = 0;
    for &(_, arity) in &preds {
        let tuples = u32::try_from(arity)
            .ok()
            .and_then(|a| base.checked_pow(a))
            .and_then(|t| total.checked_add(t));
        match tuples {
            Some(t) if t <= max_atoms as u128 => total = t,
            _ => return None,
        }
    }
    // Mint a star id distinct from every rule constant. The rules' ids
    // come from the kb's vocabulary; when the caller hands us a fresh
    // one, the first interned names may collide id-wise with rule
    // constants, so keep minting until the id is genuinely new.
    let mut star = vocab.constant("critical_star");
    let mut n = 0usize;
    while consts.contains(&star) {
        n += 1;
        star = vocab.constant(&format!("critical_star_{n}"));
    }
    consts.insert(star);
    let consts: Vec<Term> = consts.into_iter().map(Term::Const).collect();
    let mut out = AtomSet::new();
    for (p, arity) in preds {
        // All `|consts|^arity` tuples, counted in base `|consts|`.
        let mut tuple = vec![0usize; arity];
        loop {
            out.insert(Atom::new(
                p,
                tuple.iter().map(|&i| consts[i]).collect::<Vec<_>>(),
            ));
            let Some(pos) = (0..arity).rev().find(|&i| tuple[i] + 1 < consts.len()) else {
                break;
            };
            tuple[pos] += 1;
            for slot in tuple.iter_mut().skip(pos + 1) {
                *slot = 0;
            }
        }
    }
    Some(out)
}

/// Outcome of the critical-instance test.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CriticalOutcome {
    /// The semi-oblivious chase terminated on the critical instance:
    /// **every** instance has a terminating (semi-oblivious, hence also
    /// core) chase — certified fes.
    TerminatesEverywhere {
        /// Applications used on the critical instance.
        applications: usize,
    },
    /// The budget ran out — no certificate either way (the test is only
    /// a semi-decision procedure).
    BudgetExhausted,
}

/// Applications allowed when the budget carries no node limit.
const DEFAULT_APPLICATIONS: usize = 10_000;

/// Atom ceiling the tests grant the chase (and hence the critical
/// instance itself), derived from the application budget.
pub(crate) fn atom_cap(applications: usize) -> usize {
    applications.saturating_mul(8).max(1_000)
}

/// Runs the Marnette test under the shared [`SearchBudget`]: its node
/// limit caps chase applications, and its deadline and cancel flags cut
/// the run cooperatively — so a service can abort an admission-time
/// analysis exactly like any other search.
///
/// The critical instance itself is built under the same ceiling as the
/// chase's atom budget: a ruleset whose critical instance would already
/// blow past it (high predicate arity over several constants) returns
/// [`CriticalOutcome::BudgetExhausted`] immediately instead of stalling
/// the caller on construction.
#[must_use]
pub fn critical_instance_test(rules: &RuleSet, budget: &SearchBudget) -> CriticalOutcome {
    let mut vocab = Vocabulary::new();
    let applications = budget.node_limit.unwrap_or(DEFAULT_APPLICATIONS);
    let Some(facts) = critical_instance_capped(&mut vocab, rules, atom_cap(applications)) else {
        return CriticalOutcome::BudgetExhausted;
    };
    let cfg = ChaseConfig::variant(ChaseVariant::SemiOblivious)
        .with_max_applications(applications)
        .with_max_atoms(atom_cap(applications))
        .with_record(RecordLevel::FinalOnly)
        .with_search_budget(budget.clone());
    let res = run_chase_controlled(&mut vocab, &facts, rules, &cfg, None, |_| {
        std::ops::ControlFlow::Continue(())
    });
    if res.outcome.terminated() {
        CriticalOutcome::TerminatesEverywhere {
            applications: res.stats.applications,
        }
    } else {
        CriticalOutcome::BudgetExhausted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_parser::parse_program;

    fn rules(src: &str) -> RuleSet {
        parse_program(src).expect("parses").rules
    }

    fn budget(n: usize) -> SearchBudget {
        SearchBudget::unlimited().with_node_limit(n)
    }

    #[test]
    fn critical_instance_shape() {
        let rs = rules("R: r(X, Y) -> s(Y, Z). S: s(X, Y) -> t(X).");
        let mut vocab = Vocabulary::new();
        let ci = critical_instance(&mut vocab, &rs);
        assert_eq!(ci.len(), 3, "one atom per predicate");
        assert!(ci.vars().is_empty(), "fully ground");
        assert_eq!(ci.constants().len(), 1);
    }

    #[test]
    fn critical_instance_includes_rule_constants() {
        // `ok(a)` never matches an all-∗ instance; without `a` in the
        // critical instance the diverging recursion below would be
        // (unsoundly) certified as terminating.
        let rs = rules("R: ok(a), r(X, Y) -> r(Y, Z).");
        let mut vocab = Vocabulary::new();
        let ci = critical_instance(&mut vocab, &rs);
        // ok/1 over {∗, a} = 2 atoms; r/2 over {∗, a}² = 4 atoms.
        assert_eq!(ci.len(), 6);
        assert_eq!(ci.constants().len(), 2);
        assert_eq!(
            critical_instance_test(&rs, &budget(100)),
            CriticalOutcome::BudgetExhausted
        );
    }

    #[test]
    fn weakly_acyclic_ruleset_passes() {
        let rs = rules("R: r(X, Y) -> s(Y, Z). S: s(X, Y) -> t(X).");
        assert!(matches!(
            critical_instance_test(&rs, &budget(200)),
            CriticalOutcome::TerminatesEverywhere { .. }
        ));
    }

    #[test]
    fn datalog_passes() {
        let rs = rules("T: r(X, Y), r(Y, Z) -> r(X, Z).");
        assert!(matches!(
            critical_instance_test(&rs, &budget(200)),
            CriticalOutcome::TerminatesEverywhere { .. }
        ));
    }

    #[test]
    fn diverging_ruleset_exhausts_budget() {
        // r(X,Y) → ∃Z. r(Y,Z) diverges under the semi-oblivious chase on
        // the critical instance (each fresh null spawns a new frontier
        // class).
        let rs = rules("R: r(X, Y) -> r(Y, Z).");
        assert_eq!(
            critical_instance_test(&rs, &budget(100)),
            CriticalOutcome::BudgetExhausted
        );
    }

    #[test]
    fn high_arity_blowup_is_rejected_not_materialized() {
        // p/8 over 8 rule constants + ∗ describes 9^8 ≈ 43M atoms; the
        // capped constructor must refuse without enumerating, and the
        // budgeted test must come back immediately as inconclusive.
        let rs = rules("R: p(a, b, c, d, e, f, g, h) -> q(Z).");
        let mut vocab = Vocabulary::new();
        let started = std::time::Instant::now();
        assert_eq!(critical_instance_capped(&mut vocab, &rs, 100_000), None);
        assert_eq!(
            critical_instance_test(&rs, &budget(1_000)),
            CriticalOutcome::BudgetExhausted
        );
        assert!(
            started.elapsed() < std::time::Duration::from_secs(5),
            "cap check must not enumerate the instance"
        );
        // The count is exact, not a heuristic: a 6-atom instance (ok/1
        // over {∗,a} plus r/2 over {∗,a}²) builds at cap 6 and refuses
        // at cap 5.
        let small = rules("R: ok(a), r(X, Y) -> r(Y, Z).");
        let mut vocab = Vocabulary::new();
        assert_eq!(critical_instance_capped(&mut vocab, &small, 5), None);
        assert_eq!(
            critical_instance_capped(&mut vocab, &small, 6).map(|ci| ci.len()),
            Some(6)
        );
    }

    #[test]
    fn critical_test_catches_termination_beyond_acyclicity() {
        // The join-blocker pattern:
        //   R1: p(X), ok(X) → ∃Z. q(X, Z)
        //   R2: q(X, Z) → p(Z)
        // Position flow: special (p,1) → (q,2), regular (q,2) → (p,1) —
        // a cycle through a special edge ⇒ not weakly acyclic. Yet no
        // rule ever creates an `ok` fact, so invented nulls can never
        // re-fire R1: the semi-oblivious chase terminates on every
        // instance, and the critical test certifies it.
        let rs = rules("R1: p(X), ok(X) -> q(X, Z). R2: q(X, Z) -> p(Z).");
        assert!(!crate::acyclicity::weakly_acyclic(&rs));
        assert!(matches!(
            critical_instance_test(&rs, &budget(100)),
            CriticalOutcome::TerminatesEverywhere { .. }
        ));

        // Variant that defeats joint acyclicity too: route the null back
        // through q's *other* column so Pos(Z) reaches every body
        // position of X, yet the join still never fires on invented
        // values because q-facts pair nulls with the old constant only…
        // p(X), q(X, X) → ∃Z. p(Z), q(Z, X): Pos(Z) = {(p,1), (q,1)};
        // X's body positions {(p,1), (q,1), (q,2)} ⊄ Pos(Z) ⇒ JA holds.
        // Keep the first (JA-certified) ruleset as the headline check and
        // assert the critical test handles a non-JA diverging case
        // correctly as well:
        let diverging = rules("R: p(X) -> e(X, Z), p(Z).");
        assert!(!crate::acyclicity::jointly_acyclic(&diverging));
        assert_eq!(
            critical_instance_test(&diverging, &budget(60)),
            CriticalOutcome::BudgetExhausted
        );
    }
}
