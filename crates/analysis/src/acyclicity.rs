//! Weak and joint acyclicity.

use std::collections::{BTreeMap, BTreeSet};

use chase_atoms::{AtomSet, PredId, Term, VarId};
use chase_engine::RuleSet;

/// A predicate position `(p, i)`: the `i`-th argument slot of `p`.
pub type Position = (PredId, usize);

/// The position dependency graph of a ruleset (Fagin et al.).
///
/// For every rule and every frontier variable `x` occurring at body
/// position `p`:
///
/// * a **regular** edge `p → q` for every head position `q` of `x`;
/// * a **special** edge `p → r` for every head position `r` of an
///   existential variable of the same rule.
///
/// Special edges are sourced at *frontier* body positions (not all body
/// positions): a non-frontier body variable can re-trigger a rule, but
/// never with a new frontier image, so the semi-oblivious chase
/// deduplicates the application and no value cascade arises. This
/// refinement is sound for restricted/semi-oblivious termination and
/// slightly more general than the textbook rendering; the critical-
/// instance test ([`crate::critical_instance_test`]) covers the rest.
#[derive(Clone, Debug, Default)]
pub struct PositionGraph {
    /// Regular edges.
    pub regular: BTreeSet<(Position, Position)>,
    /// Special edges (value invention).
    pub special: BTreeSet<(Position, Position)>,
}

fn positions_of(var: VarId, atoms: &AtomSet) -> Vec<Position> {
    let mut out = Vec::new();
    for atom in atoms.iter() {
        for (i, &t) in atom.args().iter().enumerate() {
            if t == Term::Var(var) {
                out.push((atom.pred(), i));
            }
        }
    }
    out
}

impl PositionGraph {
    /// Builds the dependency graph of a ruleset.
    #[must_use]
    pub fn build(rules: &RuleSet) -> Self {
        let mut g = PositionGraph::default();
        for (_, rule) in rules.iter() {
            let head_existential_positions: Vec<Position> = rule
                .existential_vars()
                .iter()
                .flat_map(|&z| positions_of(z, rule.head()))
                .collect();
            for &x in rule.frontier_vars() {
                let body_positions = positions_of(x, rule.body());
                let head_positions = positions_of(x, rule.head());
                for &p in &body_positions {
                    for &q in &head_positions {
                        g.regular.insert((p, q));
                    }
                    for &r in &head_existential_positions {
                        g.special.insert((p, r));
                    }
                }
            }
        }
        g
    }

    /// All vertices (positions) mentioned by any edge.
    #[must_use]
    pub fn positions(&self) -> BTreeSet<Position> {
        self.regular
            .iter()
            .chain(self.special.iter())
            .flat_map(|&(a, b)| [a, b])
            .collect()
    }

    /// Is there a cycle through at least one special edge?
    ///
    /// Decided via strongly connected components of the full graph: a
    /// special edge inside one SCC closes such a cycle.
    #[must_use]
    pub fn has_special_cycle(&self) -> bool {
        let verts: Vec<Position> = self.positions().into_iter().collect();
        let index: BTreeMap<Position, usize> =
            verts.iter().enumerate().map(|(i, &p)| (p, i)).collect();
        let n = verts.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(a, b) in self.regular.iter().chain(self.special.iter()) {
            adj[index[&a]].push(index[&b]);
        }
        let scc = tarjan_scc(n, &adj);
        self.special
            .iter()
            .any(|&(a, b)| scc[index[&a]] == scc[index[&b]])
    }
}

/// Iterative Tarjan SCC; returns the component id of each vertex.
///
/// Components are numbered in reverse topological order: if there is an
/// edge `u → v` crossing components then `comp[v] < comp[u]`.
pub(crate) fn tarjan_scc(n: usize, adj: &[Vec<usize>]) -> Vec<usize> {
    #[derive(Clone, Copy)]
    struct Frame {
        v: usize,
        edge: usize,
    }
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut comp = vec![usize::MAX; n];
    let mut next_index = 0usize;
    let mut next_comp = 0usize;

    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut call: Vec<Frame> = vec![Frame { v: root, edge: 0 }];
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(frame) = call.last_mut() {
            let v = frame.v;
            if frame.edge < adj[v].len() {
                let w = adj[v][frame.edge];
                frame.edge += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push(Frame { v: w, edge: 0 });
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp[w] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
                let finished_low = low[v];
                call.pop();
                if let Some(parent) = call.last() {
                    low[parent.v] = low[parent.v].min(finished_low);
                }
            }
        }
    }
    comp
}

/// Is the ruleset weakly acyclic (Fagin et al.)? Guarantees chase
/// termination on every fact base (fes membership).
#[must_use]
pub fn weakly_acyclic(rules: &RuleSet) -> bool {
    !PositionGraph::build(rules).has_special_cycle()
}

/// Is the ruleset jointly acyclic (Krötzsch & Rudolph)?
///
/// For each existential variable `z`, `Pos(z)` is the least set of
/// positions containing `z`'s head positions and closed under frontier
/// propagation (if *every* body position of a frontier variable `x` of
/// some rule lies in `Pos(z)`, then `x`'s head positions join `Pos(z)`).
/// The dependency graph has an edge `z → z'` whenever some frontier
/// variable of `z'`'s rule has all its body positions inside `Pos(z)`;
/// the ruleset is jointly acyclic iff that graph is acyclic.
#[must_use]
pub fn jointly_acyclic(rules: &RuleSet) -> bool {
    // Collect existential variables with their rules.
    let mut exvars: Vec<(usize, VarId)> = Vec::new();
    for (rid, rule) in rules.iter() {
        for &z in rule.existential_vars() {
            exvars.push((rid, z));
        }
    }
    if exvars.is_empty() {
        return true; // datalog
    }

    // Pos(z) fixpoint per existential variable.
    let pos_of = |rid: usize, z: VarId| -> BTreeSet<Position> {
        let mut pos: BTreeSet<Position> =
            positions_of(z, rules.get(rid).head()).into_iter().collect();
        loop {
            let mut changed = false;
            for (_, rule) in rules.iter() {
                for &x in rule.frontier_vars() {
                    let body_pos = positions_of(x, rule.body());
                    if !body_pos.is_empty() && body_pos.iter().all(|p| pos.contains(p)) {
                        for q in positions_of(x, rule.head()) {
                            changed |= pos.insert(q);
                        }
                    }
                }
            }
            if !changed {
                return pos;
            }
        }
    };
    let all_pos: Vec<BTreeSet<Position>> = exvars.iter().map(|&(rid, z)| pos_of(rid, z)).collect();

    // Dependency edges z → z'.
    let n = exvars.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, pos_z) in all_pos.iter().enumerate() {
        for (j, &(rid_j, _)) in exvars.iter().enumerate() {
            let rule_j = rules.get(rid_j);
            let depends = rule_j.frontier_vars().iter().any(|&x| {
                let body_pos = positions_of(x, rule_j.body());
                !body_pos.is_empty() && body_pos.iter().all(|p| pos_z.contains(p))
            });
            if depends {
                adj[i].push(j);
            }
        }
    }
    // Acyclic iff every SCC is a singleton without a self-loop.
    let scc = tarjan_scc(n, &adj);
    let mut size = vec![0usize; n];
    for &c in &scc {
        size[c] += 1;
    }
    for (i, nexts) in adj.iter().enumerate() {
        if size[scc[i]] > 1 || nexts.contains(&i) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_engine::RuleSet;
    use chase_parser::parse_program;

    fn rules(src: &str) -> RuleSet {
        parse_program(src).expect("parses").rules
    }

    #[test]
    fn datalog_is_weakly_acyclic() {
        let rs = rules("T: r(X, Y), r(Y, Z) -> r(X, Z).");
        assert!(weakly_acyclic(&rs));
        assert!(jointly_acyclic(&rs));
    }

    #[test]
    fn chain_rule_is_not_weakly_acyclic() {
        // r(X,Y) → ∃Z. r(Y,Z): position (r,2) feeds the existential at
        // (r,2) — special self-loop.
        let rs = rules("R: r(X, Y) -> r(Y, Z).");
        assert!(!weakly_acyclic(&rs));
        assert!(!jointly_acyclic(&rs));
    }

    #[test]
    fn copy_to_fresh_predicate_is_weakly_acyclic() {
        // r(X,Y) → ∃Z. s(Y,Z): specials flow r→s only; no cycle.
        let rs = rules("R: r(X, Y) -> s(Y, Z).");
        assert!(weakly_acyclic(&rs));
        assert!(jointly_acyclic(&rs));
    }

    #[test]
    fn jointly_but_not_weakly_acyclic() {
        // The standard separating example: the existential value flows
        // into a position from which only the *first* argument of its own
        // rule's body is drawn.
        //   R1: r(X, Y) → ∃Z. s(Z)
        //   R2: s(X) → t(X, X)      (t gets X at both positions)
        //   R3: t(X, Y) → r(Y, X)
        // Position graph: (s,1) is special-fed from (r,1),(r,2); s flows
        // to t, t to r, r back into R1's body — a cycle through the
        // special edge ⇒ not weakly acyclic. Joint acyclicity tracks the
        // *variable*: Pos(Z) = {(s,1),(t,1),(t,2),(r,1),(r,2)}; R1's
        // frontier… R1 has no frontier variable in its head at all, so Z
        // depends on Z only if some frontier var of R1 has all body
        // positions in Pos(Z) — X,Y do ((r,1),(r,2) ∈ Pos(Z)) ⇒ self-loop
        // ⇒ also not jointly acyclic. Use the cleaner known separator:
        //   R: r(X, Y) → ∃Z. s(Y, Z)
        //   S: s(X, Y) → r(X, X)
        // Weak acyclicity: regular edges (s,1)→(r,1),(r,2) wait—frontier
        // X of S occurs at (s,1) body, head (r,1),(r,2). Frontier Y of R
        // at (r,2) → head (s,1); special (r,2)→(s,2). Cycle: (r,2)→(s,2)
        // special; (s,2) has no outgoing (Y of S does not appear in S's
        // head) ⇒ weakly acyclic after all! So assert weakly acyclic here
        // and keep both analyses agreeing on this input.
        let rs = rules("R: r(X, Y) -> s(Y, Z). S: s(X, Y) -> r(X, X).");
        assert!(weakly_acyclic(&rs));
        assert!(jointly_acyclic(&rs));
    }

    #[test]
    fn joint_acyclicity_strictly_more_general() {
        // Krötzsch–Rudolph style separator:
        //   R1: p(X) → ∃V. q(X, V)
        //   R2: q(X, Y) → p(Y)?  — that reintroduces p from the
        //     existential position (q,2): Pos(V) = {(q,2)} ∪ (p,1) ∪ …
        //     and R1's frontier X has body position (p,1) ∈ Pos(V) ⇒
        //     V → V self-loop ⇒ not JA either. The genuinely separating
        //     pattern uses a *join* that can never be fed by V:
        //   R1: p(X), aux(X) → ∃V. q(X, V)
        //   R2: q(X, Y) → p(Y)
        //     Pos(V) ⊇ {(q,2), (p,1)}, but aux(X) keeps X's body
        //     positions {(p,1), (aux,1)} ⊄ Pos(V) since (aux,1) is never
        //     reached ⇒ no dependency ⇒ JA.
        //     Weak acyclicity sees position-level flow (p,1)→(q,2)
        //     special, (q,2)→(p,1) regular ⇒ special cycle ⇒ not WA.
        let rs = rules("R1: p(X), aux(X) -> q(X, V). R2: q(X, Y) -> p(Y).");
        assert!(!weakly_acyclic(&rs));
        assert!(jointly_acyclic(&rs));
    }

    #[test]
    fn staircase_and_elevator_are_not_acyclic() {
        let s = chase_parser::parse_program(
            "R1h: h(X, X) -> h(X, Y), v(X, X'), h(X', Y'), v(Y, Y'), c(Y').",
        )
        .unwrap()
        .rules;
        assert!(!weakly_acyclic(&s));
    }

    #[test]
    fn position_graph_edges_are_as_expected() {
        let rs = rules("R: r(X, Y) -> s(Y, Z).");
        let g = PositionGraph::build(&rs);
        let r = |i| (rs.get(0).body().iter().next().unwrap().pred(), i);
        let s = |i| (rs.get(0).head().iter().next().unwrap().pred(), i);
        assert!(g.regular.contains(&(r(1), s(0))));
        assert!(g.special.contains(&(r(1), s(1))));
        assert!(!g.has_special_cycle());
    }
}
