//! The exact termination decision for **linear** rulesets (single-atom
//! bodies), after Leclère–Mugnier–Thomazo–Ulliana's single-approach
//! derivation-tree analysis.
//!
//! Linear rules never join two atoms, so every derivation decomposes
//! into chains of single-atom steps, and whether a rule applies to an
//! atom depends only on the atom's *pattern*: its predicate plus, per
//! position, either a rule constant, the critical star `∗`, or an
//! anonymous null class. The pattern space is finite, which turns the
//! Marnette critical-instance semi-decision into a genuine decision:
//!
//! 1. saturate the set of patterns reachable from the critical
//!    instance (exact, because single-atom unification against a
//!    pattern is exactly single-atom unification against any atom
//!    realizing it);
//! 2. build the *tracked-null* transition system: states are
//!    `(pattern, marked null class)`, persistence edges carry the
//!    marked null through an application, and **minting** edges switch
//!    tracking to a fresh existential null whose minting application
//!    held the old null in its frontier image;
//! 3. the Skolem (semi-oblivious) chase diverges on some fact base
//!    **iff** a cycle through a minting edge is reachable: such a cycle
//!    pumps — linear derivations are self-similar, so the loop re-fires
//!    forever with a brand-new frontier image each round — while
//!    conversely an infinite chase has null-creation chains longer than
//!    the state space, which forces exactly such a cycle.
//!
//! The verdict is therefore **exact** for the termination route that
//! all of this crate's other fes certificates use (Skolem-chase
//! termination on every fact base): `Terminating` and `NonTerminating`
//! are proofs, not evidence, and override probe heuristics. The state
//! space is exponential in predicate arity in the worst case, so the
//! saturation still runs under the shared [`SearchBudget`] and reports
//! `BudgetExhausted` instead of stalling when a cap is hit.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use chase_atoms::{Atom, ConstId, PredId, Term, VarId};
use chase_engine::{Rule, RuleId, RuleSet};
use chase_homomorphism::SearchBudget;

use crate::acyclicity::tarjan_scc;
use crate::guards::{guard_kind, GuardKind};

/// States explored when the budget carries no node limit.
const DEFAULT_STATES: usize = 20_000;

/// Outcome of the linear-ruleset termination decision.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LinearOutcome {
    /// Pattern saturation completed with no pumpable cycle: the Skolem
    /// chase terminates on **every** fact base. Exact.
    Terminating {
        /// Distinct atom patterns reachable from the critical instance.
        patterns: usize,
    },
    /// A reachable cycle through a minting edge: the Skolem chase
    /// diverges on the critical instance (hence the ruleset is not
    /// fes). Exact.
    NonTerminating {
        /// The rule whose existential the cycle pumps.
        rule: RuleId,
    },
    /// Some rule has a multi-atom body: the decision does not apply.
    NotLinear,
    /// The state cap or deadline/cancel of the [`SearchBudget`] was hit
    /// before saturation: no verdict either way.
    BudgetExhausted {
        /// States explored before giving up.
        states: usize,
    },
}

/// The rule ids of the linear fragment: every rule whose body is a
/// single atom.
#[must_use]
pub fn linear_fragment(rules: &RuleSet) -> Vec<RuleId> {
    rules
        .iter()
        .filter(|(_, r)| guard_kind(r) == GuardKind::Linear)
        .map(|(id, _)| id)
        .collect()
}

/// One position of an atom pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Lab {
    /// A constant occurring in the rules.
    Const(ConstId),
    /// The critical star `∗` (a constant distinct from every rule
    /// constant).
    Star,
    /// An anonymous null, numbered canonically by first occurrence.
    Null(usize),
}

/// An atom up to null renaming: predicate + per-position labels with
/// null classes canonically numbered.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Pat {
    pred: PredId,
    labels: Vec<Lab>,
}

/// Matches a single body atom against a pattern. Returns the variable
/// assignment, or `None` when no atom realizing the pattern matches.
/// Exact for patterns: a body constant matches only itself (never the
/// star, never a null), and a repeated variable forces equal labels.
fn unify(body: &Atom, pat: &Pat) -> Option<BTreeMap<VarId, Lab>> {
    if body.pred() != pat.pred || body.arity() != pat.labels.len() {
        return None;
    }
    let mut sub = BTreeMap::new();
    for (i, &t) in body.args().iter().enumerate() {
        let lab = pat.labels[i];
        match t {
            Term::Const(c) => {
                if lab != Lab::Const(c) {
                    return None;
                }
            }
            Term::Var(v) => match sub.get(&v) {
                None => {
                    sub.insert(v, lab);
                }
                Some(&prev) if prev == lab => {}
                Some(_) => return None,
            },
        }
    }
    Some(sub)
}

/// One instantiated head atom: its canonical pattern, where each *old*
/// null class of the trigger pattern landed (if it survived), and where
/// each existential variable's fresh null landed.
struct HeadPat {
    pat: Pat,
    old: BTreeMap<usize, usize>,
    fresh: BTreeMap<VarId, usize>,
}

/// Instantiates every head atom of `rule` under `sub`, minting one
/// fresh null class per existential variable (shared across the head
/// atoms it occurs in, but canonicalized per atom — linear rules never
/// re-join two atoms, so cross-atom null sharing is unobservable).
fn head_patterns(rule: &Rule, sub: &BTreeMap<VarId, Lab>) -> Vec<HeadPat> {
    rule.head()
        .iter()
        .map(|h| {
            let mut labels = Vec::with_capacity(h.arity());
            let mut canon: BTreeMap<Lab, usize> = BTreeMap::new();
            let mut fresh_canon: BTreeMap<VarId, usize> = BTreeMap::new();
            let mut old = BTreeMap::new();
            let mut fresh = BTreeMap::new();
            let mut next = 0usize;
            for &t in h.args() {
                let lab = match t {
                    Term::Const(c) => Lab::Const(c),
                    Term::Var(v) => {
                        if let Some(&l) = sub.get(&v) {
                            l
                        } else {
                            // Existential: one fresh null per variable.
                            let cls = *fresh_canon.entry(v).or_insert_with(|| {
                                let cls = next;
                                next += 1;
                                fresh.insert(v, cls);
                                cls
                            });
                            labels.push(Lab::Null(cls));
                            continue;
                        }
                    }
                };
                labels.push(match lab {
                    Lab::Null(k) => {
                        let cls = *canon.entry(Lab::Null(k)).or_insert_with(|| {
                            let cls = next;
                            next += 1;
                            old.insert(k, cls);
                            cls
                        });
                        Lab::Null(cls)
                    }
                    other => other,
                });
            }
            // Fresh classes were numbered interleaved with old ones in
            // first-occurrence order, which is already canonical.
            HeadPat {
                pat: Pat {
                    pred: h.pred(),
                    labels,
                },
                old,
                fresh,
            }
        })
        .collect()
}

/// Enumerates the patterns of the critical instance: every assignment
/// of rule constants and the star to every predicate position. Returns
/// `None` when the enumeration would exceed `cap` — computed by
/// checked arithmetic before materializing anything.
fn start_patterns(rules: &RuleSet, cap: usize) -> Option<Vec<Pat>> {
    let mut preds: BTreeSet<(PredId, usize)> = BTreeSet::new();
    let mut consts: BTreeSet<ConstId> = BTreeSet::new();
    for (_, rule) in rules.iter() {
        for atom in rule.body().iter().chain(rule.head().iter()) {
            preds.insert((atom.pred(), atom.arity()));
            for t in atom.terms() {
                if let Term::Const(c) = t {
                    consts.insert(c);
                }
            }
        }
    }
    let base = consts.len() as u128 + 1;
    let mut total: u128 = 0;
    for &(_, arity) in &preds {
        total = u32::try_from(arity)
            .ok()
            .and_then(|a| base.checked_pow(a))
            .and_then(|t| total.checked_add(t))
            .filter(|&t| t <= cap as u128)?;
    }
    let labels: Vec<Lab> = std::iter::once(Lab::Star)
        .chain(consts.into_iter().map(Lab::Const))
        .collect();
    let mut out = Vec::new();
    for (pred, arity) in preds {
        let mut tuple = vec![0usize; arity];
        loop {
            out.push(Pat {
                pred,
                labels: tuple.iter().map(|&i| labels[i]).collect(),
            });
            let Some(pos) = (0..arity).rev().find(|&i| tuple[i] + 1 < labels.len()) else {
                break;
            };
            tuple[pos] += 1;
            for slot in tuple.iter_mut().skip(pos + 1) {
                *slot = 0;
            }
        }
    }
    Some(out)
}

/// Decides Skolem-chase termination (on every fact base) for a linear
/// ruleset under the shared [`SearchBudget`]. Rulesets with any
/// multi-atom body get [`LinearOutcome::NotLinear`]; run the decision
/// on the [`linear_fragment`] sub-ruleset for a per-fragment verdict
/// (rule ids in the outcome then index the sub-ruleset).
#[must_use]
pub fn linear_termination(rules: &RuleSet, budget: &SearchBudget) -> LinearOutcome {
    if rules
        .iter()
        .any(|(_, r)| guard_kind(r) != GuardKind::Linear)
    {
        return LinearOutcome::NotLinear;
    }
    let cap = budget.node_limit.unwrap_or(DEFAULT_STATES);

    // Phase 1: reachable pattern saturation.
    let Some(starts) = start_patterns(rules, cap) else {
        return LinearOutcome::BudgetExhausted { states: 0 };
    };
    let mut reach: BTreeSet<Pat> = starts.iter().cloned().collect();
    let mut work: VecDeque<Pat> = reach.iter().cloned().collect();
    while let Some(pat) = work.pop_front() {
        if reach.len() > cap || budget.interrupted() {
            return LinearOutcome::BudgetExhausted {
                states: reach.len(),
            };
        }
        for (_, rule) in rules.iter() {
            let Some(sub) = rule.body().iter().next().and_then(|b| unify(b, &pat)) else {
                continue;
            };
            for hp in head_patterns(rule, &sub) {
                if reach.insert(hp.pat.clone()) {
                    work.push_back(hp.pat);
                }
            }
        }
    }
    let patterns = reach.len();

    // Phase 2: tracked-null transition system over (pattern, class).
    let mut index: BTreeMap<(Pat, usize), usize> = BTreeMap::new();
    let mut states: Vec<(Pat, usize)> = Vec::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut intern = |pat: Pat,
                      cls: usize,
                      states: &mut Vec<(Pat, usize)>,
                      queue: &mut VecDeque<usize>|
     -> usize {
        *index.entry((pat.clone(), cls)).or_insert_with(|| {
            states.push((pat, cls));
            queue.push_back(states.len() - 1);
            states.len() - 1
        })
    };
    // Initial states: every fresh null minted by a rule firing on a
    // reachable pattern (a divergence chain can start at any minting).
    for pat in &reach {
        for (_, rule) in rules.iter() {
            let Some(sub) = rule.body().iter().next().and_then(|b| unify(b, pat)) else {
                continue;
            };
            for hp in head_patterns(rule, &sub) {
                for &cls in hp.fresh.values() {
                    intern(hp.pat.clone(), cls, &mut states, &mut queue);
                }
            }
        }
    }
    // Edges: `minting` names the rule when the edge switches tracking
    // to a fresh null (the old null sat in the frontier image).
    let mut edges: Vec<(usize, usize, Option<RuleId>)> = Vec::new();
    while let Some(s) = queue.pop_front() {
        if states.len() > cap || budget.interrupted() {
            return LinearOutcome::BudgetExhausted {
                states: states.len(),
            };
        }
        let (pat, marked) = states[s].clone();
        for (rid, rule) in rules.iter() {
            let Some(sub) = rule.body().iter().next().and_then(|b| unify(b, &pat)) else {
                continue;
            };
            let frontier_hit = rule
                .frontier_vars()
                .iter()
                .any(|v| sub.get(v) == Some(&Lab::Null(marked)));
            for hp in head_patterns(rule, &sub) {
                if let Some(&cls) = hp.old.get(&marked) {
                    let t = intern(hp.pat.clone(), cls, &mut states, &mut queue);
                    edges.push((s, t, None));
                }
                if frontier_hit {
                    for &cls in hp.fresh.values() {
                        let t = intern(hp.pat.clone(), cls, &mut states, &mut queue);
                        edges.push((s, t, Some(rid)));
                    }
                }
            }
        }
    }

    // Phase 3: a minting edge inside one SCC is a pumpable cycle.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); states.len()];
    for &(u, v, _) in &edges {
        adj[u].push(v);
    }
    let comp = tarjan_scc(states.len(), &adj);
    for &(u, v, minting) in &edges {
        if let Some(rule) = minting {
            if comp[u] == comp[v] {
                return LinearOutcome::NonTerminating { rule };
            }
        }
    }
    LinearOutcome::Terminating { patterns }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_parser::parse_program;

    fn rules(src: &str) -> RuleSet {
        parse_program(src).expect("parses").rules
    }

    fn budget(n: usize) -> SearchBudget {
        SearchBudget::unlimited().with_node_limit(n)
    }

    #[test]
    fn diverging_linear_chain_refuted() {
        let rs = rules("R: r(X, Y) -> r(Y, Z).");
        assert_eq!(
            linear_termination(&rs, &budget(5_000)),
            LinearOutcome::NonTerminating { rule: 0 }
        );
    }

    #[test]
    fn terminating_linear_pipeline_certified() {
        let rs = rules("R: r(X, Y) -> s(Y, Z). S: s(X, Y) -> t(X).");
        assert!(matches!(
            linear_termination(&rs, &budget(5_000)),
            LinearOutcome::Terminating { .. }
        ));
    }

    #[test]
    fn frontier_dropping_existential_terminates() {
        // p(X) → ∃Z. p(Z): the minting application's frontier is empty,
        // so the semi-oblivious chase fires it once per rule — the naive
        // "existential in a cycle" reading would wrongly refute this.
        let rs = rules("R: p(X) -> p(Z).");
        assert!(matches!(
            linear_termination(&rs, &budget(5_000)),
            LinearOutcome::Terminating { .. }
        ));
    }

    #[test]
    fn two_rule_null_relay_refuted() {
        // The null relays through q back into p's second column with
        // the null in the frontier each time: a pump across two rules.
        let rs = rules("R1: p(X, Y) -> q(Y, Z). R2: q(X, Y) -> p(X, Y).");
        assert!(matches!(
            linear_termination(&rs, &budget(5_000)),
            LinearOutcome::NonTerminating { .. }
        ));
    }

    #[test]
    fn constant_rebirth_relay_terminates() {
        // Same relay but R2 drops the null and re-seeds with a
        // constant: each R1 firing on p(_, b) has the same frontier
        // image, so the semi-oblivious chase fires it once and stops —
        // the frontier-image condition on minting edges is load-bearing.
        let rs = rules("R1: p(X, Y) -> q(Y, Z). R2: q(X, Y) -> p(Y, b).");
        assert!(matches!(
            linear_termination(&rs, &budget(5_000)),
            LinearOutcome::Terminating { .. }
        ));
    }

    #[test]
    fn constant_blocker_terminates() {
        // The recursion needs ok(a)-gated... here the body constant `a`
        // never matches a null, so the loop cannot consume its own
        // output: r only fires on q(a, _) atoms, and its output is
        // q(Z, b) — Z is a null, never `a`.
        let rs = rules("R: q(a, Y) -> q(Z, b).");
        assert!(matches!(
            linear_termination(&rs, &budget(5_000)),
            LinearOutcome::Terminating { .. }
        ));
    }

    #[test]
    fn datalog_linear_rules_terminate() {
        let rs = rules("A: p(X) -> q(X). B: q(X) -> p(X).");
        assert!(matches!(
            linear_termination(&rs, &budget(5_000)),
            LinearOutcome::Terminating { .. }
        ));
    }

    #[test]
    fn multi_atom_body_is_not_linear() {
        let rs = rules("T: r(X, Y), r(Y, Z) -> r(X, Z).");
        assert_eq!(
            linear_termination(&rs, &budget(100)),
            LinearOutcome::NotLinear
        );
    }

    #[test]
    fn linear_fragment_lists_single_atom_bodies() {
        let rs = rules("A: r(X, Y) -> s(Y). B: r(X, Y), s(Y) -> t(X).");
        assert_eq!(linear_fragment(&rs), vec![0]);
    }

    #[test]
    fn tiny_budget_is_inconclusive() {
        let rs = rules("R: r(X, Y) -> r(Y, Z).");
        assert!(matches!(
            linear_termination(&rs, &budget(0)),
            LinearOutcome::BudgetExhausted { .. }
        ));
    }

    #[test]
    fn high_arity_blowup_is_inconclusive_not_materialized() {
        let rs = rules("R: p(a, b, c, d, e, f, g, h) -> p(b, c, d, e, f, g, h, Z).");
        let started = std::time::Instant::now();
        assert!(matches!(
            linear_termination(&rs, &budget(1_000)),
            LinearOutcome::BudgetExhausted { states: 0 }
        ));
        assert!(
            started.elapsed() < std::time::Duration::from_secs(5),
            "the 9^8-pattern start set must not be enumerated"
        );
    }

    #[test]
    fn mfa_false_positive_is_decided_exactly() {
        // q(X, Y) → ∃Z. q(Z, X): the null flows into the *first* column
        // only; re-firing on q(n, x) puts n in the frontier and mints a
        // deeper null, so this genuinely diverges — and unlike the MFA
        // heuristic the decision proves it.
        let rs = rules("R: q(X, Y) -> q(Z, X).");
        assert_eq!(
            linear_termination(&rs, &budget(5_000)),
            LinearOutcome::NonTerminating { rule: 0 }
        );
    }
}
