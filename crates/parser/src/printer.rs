//! Rendering a [`Program`] back to the text syntax (round-trip support).

use std::fmt::Write as _;

use chase_atoms::{Atom, AtomSet, Term, Vocabulary};
use chase_engine::Rule;

use crate::lower::Program;

/// Renders a variable name valid in the surface syntax: the lowering
/// prefixes variable names with their statement scope (`R1.X`), which the
/// printer strips again; unnamed variables become `V<raw>`.
fn var_name(vocab: &Vocabulary, v: chase_atoms::VarId, scope: &str) -> String {
    match vocab.var_name(v) {
        Some(name) => match name.strip_prefix(&format!("{scope}.")) {
            Some(stripped) => stripped.to_string(),
            None => name.rsplit('.').next().unwrap_or(name).to_string(),
        },
        None => format!("V{}", v.raw()),
    }
}

fn term_text(vocab: &Vocabulary, t: Term, scope: &str) -> String {
    match t {
        Term::Const(c) => vocab
            .const_name(c)
            .map(str::to_string)
            .unwrap_or_else(|| format!("k{}", c.raw())),
        Term::Var(v) => var_name(vocab, v, scope),
    }
}

fn atom_text(vocab: &Vocabulary, atom: &Atom, scope: &str) -> String {
    let args: Vec<String> = atom
        .args()
        .iter()
        .map(|&t| term_text(vocab, t, scope))
        .collect();
    if args.is_empty() {
        vocab.pred_name(atom.pred()).to_string()
    } else {
        format!("{}({})", vocab.pred_name(atom.pred()), args.join(", "))
    }
}

fn atoms_text(vocab: &Vocabulary, atoms: &AtomSet, scope: &str) -> String {
    atoms
        .sorted_atoms()
        .iter()
        .map(|a| atom_text(vocab, a, scope))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Renders one rule as `Name: body -> head.`.
pub fn rule_to_text(vocab: &Vocabulary, rule: &Rule) -> String {
    format!(
        "{}: {} -> {}.",
        rule.name(),
        atoms_text(vocab, rule.body(), rule.name()),
        atoms_text(vocab, rule.head(), rule.name())
    )
}

/// Renders a whole program in the surface syntax. Re-parsing the result
/// yields a program with the same facts (up to null renaming), rules and
/// queries.
pub fn program_to_text(prog: &Program) -> String {
    let mut out = String::new();
    if !prog.facts.is_empty() {
        // Facts keep one statement so shared nulls stay shared.
        let _ = writeln!(out, "{}.", atoms_text(&prog.vocab, &prog.facts, "f0"));
    }
    for (_, rule) in prog.rules.iter() {
        let _ = writeln!(out, "{}", rule_to_text(&prog.vocab, rule));
    }
    for (name, atoms) in &prog.queries {
        let _ = writeln!(out, "{name}: ?- {}.", atoms_text(&prog.vocab, atoms, name));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::parse_program;

    #[test]
    fn roundtrip_simple_program() {
        let src = "
            r(a, b). r(b, X).
            R1: r(X, Y) -> r(Y, Z).
            Q1: ?- r(A, B), r(B, A).
        ";
        let p1 = parse_program(src).unwrap();
        let text = program_to_text(&p1);
        let p2 = parse_program(&text).unwrap();
        assert_eq!(p1.facts.len(), p2.facts.len());
        assert_eq!(p1.facts.vars().len(), p2.facts.vars().len());
        assert_eq!(p1.rules.len(), p2.rules.len());
        assert_eq!(p1.queries.len(), p2.queries.len());
        let r1 = p1.rules.get(0);
        let r2 = p2.rules.get(0);
        assert_eq!(r1.name(), r2.name());
        assert_eq!(r1.body().len(), r2.body().len());
        assert_eq!(r1.existential_vars().len(), r2.existential_vars().len());
    }

    #[test]
    fn roundtrip_is_idempotent_on_text() {
        let src = "p(a). R: p(X) -> q(X, Y). Q: ?- q(a, Z).";
        let p1 = parse_program(src).unwrap();
        let t1 = program_to_text(&p1);
        let p2 = parse_program(&t1).unwrap();
        let t2 = program_to_text(&p2);
        assert_eq!(t1, t2, "printing stabilizes after one roundtrip");
    }

    #[test]
    fn zero_arity_atoms_roundtrip() {
        let src = "go. R: go -> done.";
        let p1 = parse_program(src).unwrap();
        let text = program_to_text(&p1);
        let p2 = parse_program(&text).unwrap();
        assert_eq!(p2.rules.len(), 1);
        assert_eq!(p2.facts.len(), 1);
    }

    #[test]
    fn shared_fact_nulls_stay_shared() {
        let src = "r(X, a), s(X).";
        let p1 = parse_program(src).unwrap();
        assert_eq!(p1.facts.vars().len(), 1);
        let p2 = parse_program(&program_to_text(&p1)).unwrap();
        assert_eq!(p2.facts.vars().len(), 1);
    }
}
