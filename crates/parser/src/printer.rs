//! Rendering a [`Program`] back to the text syntax (round-trip support).

use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

use chase_atoms::{Atom, AtomSet, Term, VarId, Vocabulary};
use chase_engine::Rule;

use crate::lower::{is_reserved_null_name, Program};

/// The reserved surface spelling for a labeled null without a usable
/// name: `_N<raw>`. It lexes as a variable (leading `_`), is unique per
/// `VarId`, and [`crate::parse_program`] rejects it in user input, so a
/// printed null can never capture a user variable on re-parse.
fn reserved_null(v: VarId) -> String {
    format!("_N{}", v.raw())
}

/// Renders a variable name valid in the surface syntax: the lowering
/// prefixes variable names with their statement scope (`R1.X`), which the
/// printer strips again; unnamed variables print in the reserved
/// `_N<raw>` spelling.
fn var_name(vocab: &Vocabulary, v: VarId, scope: &str) -> String {
    match vocab.var_name(v) {
        Some(name) => match name.strip_prefix(&format!("{scope}.")) {
            Some(stripped) => stripped.to_string(),
            None => name.rsplit('.').next().unwrap_or(name).to_string(),
        },
        None => reserved_null(v),
    }
}

/// Names for the single facts statement, where variables of *every* fact
/// scope (plus the engine's fresh nulls) print together: each distinct
/// `VarId` must get a distinct spelling, so stripped names that collide —
/// `f0.X` and `f1.X` both render as `X` — or that land in the reserved
/// namespace are α-renamed to `_N<raw>`.
fn fact_var_names(vocab: &Vocabulary, facts: &AtomSet) -> HashMap<VarId, String> {
    let mut names = HashMap::new();
    let mut used: HashSet<String> = HashSet::new();
    // `vars()` is sorted by id, so the winner of a name is deterministic.
    for v in facts.vars() {
        let stripped = vocab
            .var_name(v)
            .map(|name| name.rsplit('.').next().unwrap_or(name).to_string());
        let name = match stripped {
            Some(n) if !is_reserved_null_name(&n) && used.insert(n.clone()) => n,
            _ => reserved_null(v),
        };
        names.insert(v, name);
    }
    names
}

fn term_text(
    vocab: &Vocabulary,
    t: Term,
    scope: &str,
    names: Option<&HashMap<VarId, String>>,
) -> String {
    match t {
        Term::Const(c) => vocab
            .const_name(c)
            .map_or_else(|| format!("k{}", c.raw()), str::to_string),
        Term::Var(v) => match names.and_then(|m| m.get(&v)) {
            Some(name) => name.clone(),
            None => var_name(vocab, v, scope),
        },
    }
}

fn atom_text(
    vocab: &Vocabulary,
    atom: &Atom,
    scope: &str,
    names: Option<&HashMap<VarId, String>>,
) -> String {
    let args: Vec<String> = atom
        .args()
        .iter()
        .map(|&t| term_text(vocab, t, scope, names))
        .collect();
    if args.is_empty() {
        vocab.pred_name(atom.pred()).to_string()
    } else {
        format!("{}({})", vocab.pred_name(atom.pred()), args.join(", "))
    }
}

fn atoms_text_with(
    vocab: &Vocabulary,
    atoms: &AtomSet,
    scope: &str,
    names: Option<&HashMap<VarId, String>>,
) -> String {
    atoms
        .sorted_atoms()
        .iter()
        .map(|a| atom_text(vocab, a, scope, names))
        .collect::<Vec<_>>()
        .join(", ")
}

fn atoms_text(vocab: &Vocabulary, atoms: &AtomSet, scope: &str) -> String {
    atoms_text_with(vocab, atoms, scope, None)
}

/// Renders one rule as `Name: body -> head.`.
pub fn rule_to_text(vocab: &Vocabulary, rule: &Rule) -> String {
    format!(
        "{}: {} -> {}.",
        rule.name(),
        atoms_text(vocab, rule.body(), rule.name()),
        atoms_text(vocab, rule.head(), rule.name())
    )
}

/// Renders a whole program in the surface syntax. Re-parsing the result
/// yields a program with the same facts (up to null renaming), rules and
/// queries.
pub fn program_to_text(prog: &Program) -> String {
    let mut out = String::new();
    if !prog.facts.is_empty() {
        // Facts keep one statement so shared nulls stay shared.
        let names = fact_var_names(&prog.vocab, &prog.facts);
        let _ = writeln!(
            out,
            "{}.",
            atoms_text_with(&prog.vocab, &prog.facts, "f0", Some(&names))
        );
    }
    for (_, rule) in prog.rules.iter() {
        let _ = writeln!(out, "{}", rule_to_text(&prog.vocab, rule));
    }
    for (name, atoms) in &prog.queries {
        let _ = writeln!(out, "{name}: ?- {}.", atoms_text(&prog.vocab, atoms, name));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::parse_program;

    #[test]
    fn roundtrip_simple_program() {
        let src = "
            r(a, b). r(b, X).
            R1: r(X, Y) -> r(Y, Z).
            Q1: ?- r(A, B), r(B, A).
        ";
        let p1 = parse_program(src).unwrap();
        let text = program_to_text(&p1);
        let p2 = parse_program(&text).unwrap();
        assert_eq!(p1.facts.len(), p2.facts.len());
        assert_eq!(p1.facts.vars().len(), p2.facts.vars().len());
        assert_eq!(p1.rules.len(), p2.rules.len());
        assert_eq!(p1.queries.len(), p2.queries.len());
        let r1 = p1.rules.get(0);
        let r2 = p2.rules.get(0);
        assert_eq!(r1.name(), r2.name());
        assert_eq!(r1.body().len(), r2.body().len());
        assert_eq!(r1.existential_vars().len(), r2.existential_vars().len());
    }

    #[test]
    fn roundtrip_is_idempotent_on_text() {
        let src = "p(a). R: p(X) -> q(X, Y). Q: ?- q(a, Z).";
        let p1 = parse_program(src).unwrap();
        let t1 = program_to_text(&p1);
        let p2 = parse_program(&t1).unwrap();
        let t2 = program_to_text(&p2);
        assert_eq!(t1, t2, "printing stabilizes after one roundtrip");
    }

    #[test]
    fn zero_arity_atoms_roundtrip() {
        let src = "go. R: go -> done.";
        let p1 = parse_program(src).unwrap();
        let text = program_to_text(&p1);
        let p2 = parse_program(&text).unwrap();
        assert_eq!(p2.rules.len(), 1);
        assert_eq!(p2.facts.len(), 1);
    }

    #[test]
    fn shared_fact_nulls_stay_shared() {
        let src = "r(X, a), s(X).";
        let p1 = parse_program(src).unwrap();
        assert_eq!(p1.facts.vars().len(), 1);
        let p2 = parse_program(&program_to_text(&p1)).unwrap();
        assert_eq!(p2.facts.vars().len(), 1);
    }

    #[test]
    fn unnamed_nulls_cannot_capture_user_variables() {
        use crate::lower::parse_program_trusted;
        // A user program whose variables are literally named `V<n>` —
        // the spelling the printer once used for unnamed nulls.
        let mut p = parse_program("r(V0, V1). R: r(X, Y) -> s(Y, Z).").unwrap();
        // Two engine-minted nulls land in the fact base, as after a
        // chase slice. Their raw ids overlap the `V<n>` namespace.
        let s = p.vocab.pred("s", 2);
        let n1 = p.vocab.fresh_var();
        let n2 = p.vocab.fresh_var();
        p.facts
            .insert(Atom::new(s, vec![Term::Var(n1), Term::Var(n2)]));
        let before = p.facts.vars().len();
        assert_eq!(before, 4);
        let text = program_to_text(&p);
        assert!(text.contains("_N"), "{text}");
        let back = parse_program_trusted(&text).unwrap();
        assert_eq!(back.facts.vars().len(), 4, "{text}");
        assert_eq!(back.facts.len(), p.facts.len());
    }

    #[test]
    fn colliding_fact_statement_names_are_alpha_renamed() {
        use crate::lower::parse_program_trusted;
        // Two fact statements each using `X`: distinct nulls (`f0.X`,
        // `f1.X`) that both strip to `X` in the merged facts statement.
        let p1 = parse_program("r(X, a). s(X, b).").unwrap();
        assert_eq!(p1.facts.vars().len(), 2);
        let text = program_to_text(&p1);
        let p2 = parse_program_trusted(&text).unwrap();
        assert_eq!(p2.facts.vars().len(), 2, "{text}");
    }
}
