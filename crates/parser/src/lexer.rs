//! Tokenizer for the rule/fact/query syntax.

use crate::parser_impl::{ParseError, Span};

/// Token kinds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or number literal (classification happens in the
    /// parser based on position and capitalization).
    Ident(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Period,
    /// `:`
    Colon,
    /// `->`
    Arrow,
    /// `?-`
    QueryMark,
    /// `?` (answer-query head, as in `?(X, Y) :- …`)
    Question,
    /// `:-` (answer-query body separator)
    Turnstile,
    /// `;` (UCQ disjunct separator)
    Semi,
    /// End of input.
    Eof,
}

/// A token with its source span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// What kind of token.
    pub kind: TokenKind,
    /// Where it sits in the source.
    pub span: Span,
}

/// A hand-rolled tokenizer tracking line/column positions.
pub struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn here(&self) -> Span {
        Span {
            line: self.line,
            col: self.col,
        }
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'%') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    /// Produces the next token.
    pub fn next_token(&mut self) -> Result<Token, ParseError> {
        self.skip_trivia();
        let span = self.here();
        let Some(b) = self.peek() else {
            return Ok(Token {
                kind: TokenKind::Eof,
                span,
            });
        };
        let kind = match b {
            b'(' => {
                self.bump();
                TokenKind::LParen
            }
            b')' => {
                self.bump();
                TokenKind::RParen
            }
            b',' => {
                self.bump();
                TokenKind::Comma
            }
            b'.' => {
                self.bump();
                TokenKind::Period
            }
            b':' if self.peek2() == Some(b'-') => {
                self.bump();
                self.bump();
                TokenKind::Turnstile
            }
            b':' => {
                self.bump();
                TokenKind::Colon
            }
            b';' => {
                self.bump();
                TokenKind::Semi
            }
            b'-' if self.peek2() == Some(b'>') => {
                self.bump();
                self.bump();
                TokenKind::Arrow
            }
            b'?' if self.peek2() == Some(b'-') => {
                self.bump();
                self.bump();
                TokenKind::QueryMark
            }
            b'?' => {
                self.bump();
                TokenKind::Question
            }
            b if b.is_ascii_alphanumeric() || b == b'_' => {
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == b'_' || c == b'\'' {
                        self.bump();
                    } else {
                        break;
                    }
                }
                TokenKind::Ident(self.src[start..self.pos].to_owned())
            }
            other => {
                return Err(ParseError::new(
                    span,
                    format!("unexpected character `{}`", other as char),
                ))
            }
        };
        Ok(Token { kind, span })
    }

    /// Tokenizes the whole input (including the trailing [`TokenKind::Eof`]).
    pub fn tokenize(mut self) -> Result<Vec<Token>, ParseError> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token()?;
            let eof = tok.kind == TokenKind::Eof;
            out.push(tok);
            if eof {
                return Ok(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_atoms_and_arrows() {
        let ks = kinds("h(X, a) -> c(Y).");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("h".into()),
                TokenKind::LParen,
                TokenKind::Ident("X".into()),
                TokenKind::Comma,
                TokenKind::Ident("a".into()),
                TokenKind::RParen,
                TokenKind::Arrow,
                TokenKind::Ident("c".into()),
                TokenKind::LParen,
                TokenKind::Ident("Y".into()),
                TokenKind::RParen,
                TokenKind::Period,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn skips_comments() {
        let ks = kinds("% hello\nh(a). // tail\n");
        assert_eq!(ks.len(), 6); // h ( a ) . EOF
    }

    #[test]
    fn query_mark() {
        let ks = kinds("?- p(X).");
        assert_eq!(ks[0], TokenKind::QueryMark);
    }

    #[test]
    fn answer_query_tokens() {
        let ks = kinds("?(X) :- p(X) ; q(X).");
        assert_eq!(ks[0], TokenKind::Question);
        assert_eq!(ks[4], TokenKind::Turnstile);
        assert!(ks.contains(&TokenKind::Semi));
        // `?-` keeps lexing as one token, not Question + something.
        assert_eq!(kinds("?- p(X).")[0], TokenKind::QueryMark);
        // A statement name's `:` is still a plain colon.
        assert_eq!(kinds("R1: p(X).")[1], TokenKind::Colon);
    }

    #[test]
    fn primed_identifiers() {
        let ks = kinds("Y'");
        assert_eq!(ks[0], TokenKind::Ident("Y'".into()));
    }

    #[test]
    fn error_on_garbage() {
        let err = Lexer::new("h(@)").tokenize().unwrap_err();
        assert!(err.to_string().contains('@'));
    }

    #[test]
    fn tracks_line_numbers() {
        let toks = Lexer::new("a\nb").tokenize().unwrap();
        assert_eq!(toks[0].span.line, 1);
        assert_eq!(toks[1].span.line, 2);
    }
}
