//! Lowering the AST into `chase-atoms` / `chase-engine` values.

use std::collections::HashMap;

use chase_atoms::{Atom, AtomSet, Term, VarId, Vocabulary};
use chase_engine::{Rule, RuleSet};

use crate::parser_impl::{parse_query_ast, parse_stmts, AtomAst, ParseError, StmtAst, TermAst};

/// A fully lowered program: vocabulary, fact set, rules and named queries.
#[derive(Clone, Debug)]
pub struct Program {
    /// Symbol tables (predicates, constants, variable names).
    pub vocab: Vocabulary,
    /// The fact base `F`. Variables occurring in facts are labeled nulls
    /// scoped per fact *statement*.
    pub facts: AtomSet,
    /// The rule set `Σ`, in source order.
    pub rules: RuleSet,
    /// Boolean CQs, keyed by name (`q0`, `q1`, … for anonymous queries).
    pub queries: Vec<(String, AtomSet)>,
}

/// Is `name` the printer's reserved spelling for an unnamed labeled null
/// (`_N` followed by digits)? User input must not use it — otherwise
/// re-parsing a checkpoint could merge a null with a user variable.
pub fn is_reserved_null_name(name: &str) -> bool {
    name.strip_prefix("_N")
        .is_some_and(|rest| !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()))
}

struct Scope<'v> {
    vocab: &'v mut Vocabulary,
    vars: HashMap<String, chase_atoms::VarId>,
    prefix: String,
    /// Accept the reserved `_N<digits>` null spelling (printer output,
    /// i.e. checkpoint programs) instead of rejecting it as user input.
    allow_reserved: bool,
}

impl<'v> Scope<'v> {
    fn new(vocab: &'v mut Vocabulary, prefix: impl Into<String>) -> Self {
        Scope {
            vocab,
            vars: HashMap::new(),
            prefix: prefix.into(),
            allow_reserved: false,
        }
    }

    fn lower_atom(&mut self, ast: &AtomAst) -> Result<Atom, ParseError> {
        // Arity checking against earlier uses.
        if let Some(pred) = self.vocab.lookup_pred(&ast.pred) {
            let expected = self.vocab.arity(pred);
            if expected != ast.args.len() {
                return Err(ParseError::new(
                    ast.span,
                    format!(
                        "predicate `{}` used with arity {}, but declared with arity {expected}",
                        ast.pred,
                        ast.args.len()
                    ),
                ));
            }
        }
        let pred = self.vocab.pred(&ast.pred, ast.args.len());
        let args: Vec<Term> = ast
            .args
            .iter()
            .map(|t| match t {
                TermAst::Const(name) => Ok(Term::Const(self.vocab.constant(name))),
                TermAst::Var(name) => {
                    if !self.allow_reserved && is_reserved_null_name(name) {
                        return Err(ParseError::new(
                            ast.span,
                            format!(
                                "variable name `{name}` is reserved for printed \
                                 labeled nulls; rename it (e.g. `N{}`)",
                                &name[2..]
                            ),
                        ));
                    }
                    let id = *self.vars.entry(name.clone()).or_insert_with(|| {
                        let v = self.vocab.fresh_var();
                        self.vocab
                            .set_var_name(v, &format!("{}{}", self.prefix, name));
                        v
                    });
                    Ok(Term::Var(id))
                }
            })
            .collect::<Result<_, ParseError>>()?;
        Ok(Atom::new(pred, args))
    }

    fn lower_atoms(&mut self, atoms: &[AtomAst]) -> Result<AtomSet, ParseError> {
        atoms.iter().map(|a| self.lower_atom(a)).collect()
    }
}

/// Parses a whole program, rejecting the reserved `_N<digits>` variable
/// spelling (see [`is_reserved_null_name`]).
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    parse_program_impl(src, false)
}

/// Parses a program that the printer itself produced (checkpoint
/// programs): the reserved `_N<digits>` spelling is accepted as an
/// ordinary variable name. Never feed untrusted user input through this
/// entry point — the reservation exists to keep printed labeled nulls
/// from capturing user variables on re-parse.
pub fn parse_program_trusted(src: &str) -> Result<Program, ParseError> {
    parse_program_impl(src, true)
}

fn parse_program_impl(src: &str, trusted: bool) -> Result<Program, ParseError> {
    let stmts = parse_stmts(src)?;
    let mut vocab = Vocabulary::new();
    let mut facts = AtomSet::new();
    let mut rules = RuleSet::new();
    let mut queries = Vec::new();
    let mut anon_rules = 0usize;
    let mut anon_queries = 0usize;
    let mut fact_stmts = 0usize;
    for stmt in &stmts {
        match stmt {
            StmtAst::Facts(atoms) => {
                let mut scope = Scope::new(&mut vocab, format!("f{fact_stmts}."));
                scope.allow_reserved = trusted;
                fact_stmts += 1;
                let lowered = scope.lower_atoms(atoms)?;
                facts.union_with(&lowered);
            }
            StmtAst::Rule(rule) => {
                let name = rule.name.clone().unwrap_or_else(|| {
                    anon_rules += 1;
                    format!("r{}", anon_rules - 1)
                });
                let mut scope = Scope::new(&mut vocab, format!("{name}."));
                scope.allow_reserved = trusted;
                let body = scope.lower_atoms(&rule.body)?;
                let head = scope.lower_atoms(&rule.head)?;
                let lowered = Rule::new(name, body, head)
                    .map_err(|e| ParseError::new(rule.span, e.to_string()))?;
                rules.push(lowered);
            }
            StmtAst::Query { name, atoms, span } => {
                let name = name.clone().unwrap_or_else(|| {
                    anon_queries += 1;
                    format!("q{}", anon_queries - 1)
                });
                let mut scope = Scope::new(&mut vocab, format!("{name}."));
                scope.allow_reserved = trusted;
                let lowered = scope.lower_atoms(atoms)?;
                if lowered.is_empty() {
                    return Err(ParseError::new(*span, "query must not be empty"));
                }
                queries.push((name, lowered));
            }
        }
    }
    Ok(Program {
        vocab,
        facts,
        rules,
        queries,
    })
}

/// Parses a comma-separated atom list (e.g. a CQ) against an existing
/// vocabulary; variables get a fresh scope with the given prefix.
pub fn parse_atoms_with(
    vocab: &mut Vocabulary,
    prefix: &str,
    src: &str,
) -> Result<AtomSet, ParseError> {
    let stmts = parse_stmts(&format!("{src}."))?;
    let [StmtAst::Facts(atoms)] = &stmts[..] else {
        return Err(ParseError::new(
            crate::parser_impl::Span { line: 1, col: 1 },
            "expected a plain atom list",
        ));
    };
    Scope::new(vocab, format!("{prefix}.")).lower_atoms(atoms)
}

/// Parses a single rule (`body -> head`) against an existing vocabulary.
pub fn parse_rule_with(vocab: &mut Vocabulary, name: &str, src: &str) -> Result<Rule, ParseError> {
    let stmts = parse_stmts(&format!("{src}."))?;
    let [StmtAst::Rule(rule)] = &stmts[..] else {
        return Err(ParseError::new(
            crate::parser_impl::Span { line: 1, col: 1 },
            "expected a single rule",
        ));
    };
    let mut scope = Scope::new(vocab, format!("{name}."));
    let body = scope.lower_atoms(&rule.body)?;
    let head = scope.lower_atoms(&rule.head)?;
    Rule::new(name, body, head).map_err(|e| ParseError::new(rule.span, e.to_string()))
}

/// A lowered answer query: named answer variables plus one or more
/// disjuncts, each carrying its own binding of the answer variables
/// (variables are scoped per disjunct, so the "same" `X` is a distinct
/// [`VarId`] in each disjunct).
#[derive(Clone, Debug)]
pub struct ParsedQuery {
    /// Answer variable names, in output order (empty for boolean queries).
    pub var_names: Vec<String>,
    /// `(atoms, answer_vars)` per disjunct; `answer_vars` is parallel to
    /// [`ParsedQuery::var_names`].
    pub disjuncts: Vec<(AtomSet, Vec<VarId>)>,
}

/// Parses an answer query (`?(X, Y) :- p(X, Z) ; q(X, Y)`, `?- p(X)`, or
/// a bare atom list) against an existing vocabulary. Each disjunct gets a
/// fresh variable scope with prefix `{prefix}.d{i}.`; every disjunct must
/// use every answer variable.
pub fn parse_query_with(
    vocab: &mut Vocabulary,
    prefix: &str,
    src: &str,
) -> Result<ParsedQuery, ParseError> {
    parse_query_impl(vocab, prefix, src, false)
}

/// Like [`parse_query_with`], but accepts the reserved `_N<digits>` null
/// spelling (printer output). Never feed untrusted user input through
/// this entry point.
pub fn parse_query_with_trusted(
    vocab: &mut Vocabulary,
    prefix: &str,
    src: &str,
) -> Result<ParsedQuery, ParseError> {
    parse_query_impl(vocab, prefix, src, true)
}

fn parse_query_impl(
    vocab: &mut Vocabulary,
    prefix: &str,
    src: &str,
    trusted: bool,
) -> Result<ParsedQuery, ParseError> {
    let ast = parse_query_ast(src)?;
    let mut disjuncts = Vec::with_capacity(ast.disjuncts.len());
    for (i, atoms) in ast.disjuncts.iter().enumerate() {
        let mut scope = Scope::new(&mut *vocab, format!("{prefix}.d{i}."));
        scope.allow_reserved = trusted;
        let lowered = scope.lower_atoms(atoms)?;
        if lowered.is_empty() {
            return Err(ParseError::new(ast.span, "query must not be empty"));
        }
        let answer_vars = ast
            .answer_vars
            .iter()
            .map(|name| {
                scope.vars.get(name).copied().ok_or_else(|| {
                    ParseError::new(
                        ast.span,
                        format!(
                            "answer variable `{name}` does not occur in disjunct {}",
                            i + 1
                        ),
                    )
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        disjuncts.push((lowered, answer_vars));
    }
    Ok(ParsedQuery {
        var_names: ast.answer_vars,
        disjuncts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_atoms::DisplayWith;

    #[test]
    fn lowers_full_program() {
        let src = "
            % the chain KB
            r(a, b).
            R1: r(X, Y) -> r(Y, Z).
            Q1: ?- r(X, Y), r(Y, Z).
        ";
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.facts.len(), 1);
        assert_eq!(prog.rules.len(), 1);
        assert_eq!(prog.queries.len(), 1);
        let rule = prog.rules.get(0);
        assert_eq!(rule.existential_vars().len(), 1);
        assert_eq!(rule.frontier_vars().len(), 1);
    }

    #[test]
    fn variables_scoped_per_statement() {
        let src = "
            R1: p(X) -> q(X).
            R2: q(X) -> p(X).
        ";
        let prog = parse_program(src).unwrap();
        let x1 = *prog.rules.get(0).body().vars().iter().next().unwrap();
        let x2 = *prog.rules.get(1).body().vars().iter().next().unwrap();
        assert_ne!(x1, x2, "X in R1 and R2 are distinct variables");
    }

    #[test]
    fn shared_variable_inside_rule() {
        let prog = parse_program("R: p(X, X) -> q(X).").unwrap();
        let rule = prog.rules.get(0);
        assert_eq!(rule.body().vars().len(), 1);
        assert_eq!(rule.frontier_vars().len(), 1);
    }

    #[test]
    fn fact_variables_are_nulls() {
        let prog = parse_program("p(X, a).").unwrap();
        assert_eq!(prog.facts.vars().len(), 1);
        assert_eq!(prog.facts.constants().len(), 1);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let err = parse_program("p(a). p(a, b).").unwrap_err();
        assert!(err.message.contains("arity"));
    }

    #[test]
    fn reserved_null_spelling_rejected_in_user_input() {
        assert!(is_reserved_null_name("_N0"));
        assert!(is_reserved_null_name("_N17"));
        assert!(!is_reserved_null_name("_N"));
        assert!(!is_reserved_null_name("_Nx3"));
        assert!(!is_reserved_null_name("N17"));
        assert!(!is_reserved_null_name("_M17"));
        let err = parse_program("p(_N3).").unwrap_err();
        assert!(err.message.contains("reserved"), "{}", err.message);
        let err = parse_program("R: p(X) -> q(X, _N0).").unwrap_err();
        assert!(err.message.contains("reserved"), "{}", err.message);
        // Near-misses stay legal.
        assert!(parse_program("p(_N). q(_Nx3). r(N17).").is_ok());
        // The trusted entry point (checkpoint programs) accepts it.
        let prog = parse_program_trusted("p(_N3, _N4), q(_N3).").unwrap();
        assert_eq!(prog.facts.vars().len(), 2);
    }

    #[test]
    fn display_roundtrip_names() {
        let prog = parse_program("r(a, b). R1: r(X, Y) -> r(Y, Z).").unwrap();
        let rendered = format!("{}", prog.rules.get(0).with(&prog.vocab));
        assert!(rendered.contains("r(R1.X, R1.Y)"), "{rendered}");
        assert!(rendered.contains('∃'), "{rendered}");
    }

    #[test]
    fn fragment_parsers() {
        let mut vocab = Vocabulary::new();
        let atoms = parse_atoms_with(&mut vocab, "q", "r(X, Y), r(Y, X)").unwrap();
        assert_eq!(atoms.len(), 2);
        assert_eq!(atoms.vars().len(), 2);
        let rule = parse_rule_with(&mut vocab, "R", "r(X, Y) -> r(Y, Z)").unwrap();
        assert_eq!(rule.existential_vars().len(), 1);
    }

    #[test]
    fn lowers_answer_query() {
        let mut vocab = Vocabulary::new();
        let q = parse_query_with(&mut vocab, "q", "?(X, Y) :- p(X, Z), r(Z, Y) ; s(X, Y)").unwrap();
        assert_eq!(q.var_names, vec!["X".to_owned(), "Y".to_owned()]);
        assert_eq!(q.disjuncts.len(), 2);
        let (atoms0, vars0) = &q.disjuncts[0];
        assert_eq!(atoms0.len(), 2);
        assert_eq!(vars0.len(), 2);
        // Variables are scoped per disjunct: X in d0 ≠ X in d1.
        let (_, vars1) = &q.disjuncts[1];
        assert_ne!(vars0[0], vars1[0]);
        assert_eq!(vocab.var_name(vars0[0]), Some("q.d0.X"));
        assert_eq!(vocab.var_name(vars1[0]), Some("q.d1.X"));
    }

    #[test]
    fn answer_query_validation() {
        let mut vocab = Vocabulary::new();
        // Answer var missing from the second disjunct.
        let err = parse_query_with(&mut vocab, "q", "?(X, Y) :- p(X, Y) ; p(X, X)").unwrap_err();
        assert!(err.message.contains("does not occur"), "{}", err.message);
        // Boolean forms lower with empty answer tuples.
        let q = parse_query_with(&mut vocab, "q", "?- p(X, X)").unwrap();
        assert!(q.var_names.is_empty());
        assert_eq!(q.disjuncts[0].1.len(), 0);
        // Reserved nulls rejected strictly, accepted trusted.
        assert!(parse_query_with(&mut vocab, "q", "?- p(_N1, _N1)").is_err());
        assert!(parse_query_with_trusted(&mut vocab, "q", "?- p(_N1, _N1)").is_ok());
        // Arity checking runs against the shared vocabulary.
        let err = parse_query_with(&mut vocab, "q", "?- p(X)").unwrap_err();
        assert!(err.message.contains("arity"), "{}", err.message);
    }

    #[test]
    fn staircase_rules_parse() {
        // The paper's Σ_h in this syntax.
        let src = "
            f(X0), h(X0, X0).
            R1h: h(X, X) -> h(X, Y), v(X, X1), h(X1, Y1), v(Y, Y1), c(Y1).
            R2h: h(X, X), v(X, X1), h(X1, X1), h(X1, Y1) -> c(Y1), h(X, Y), v(Y, Y1).
            R3h: f(X), h(X, X), h(X, Y) -> f(Y), h(Y, Y).
            R4h: h(X, X), v(X, X1), c(X1) -> h(X1, X1).
        ";
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.rules.len(), 4);
        assert_eq!(prog.facts.len(), 2);
        assert!(prog.rules.get(2).is_datalog());
        assert!(prog.rules.get(3).is_datalog());
        assert_eq!(prog.rules.get(0).existential_vars().len(), 3);
    }
}
