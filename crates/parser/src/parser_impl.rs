//! Recursive-descent parser producing a plain AST; lowering to engine
//! types lives in [`crate::lower`].

use std::fmt;

use crate::lexer::{Lexer, Token, TokenKind};

/// A source location (1-based line and column).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// A parse (or lowering) error with its source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Where the error was detected.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    /// Creates an error at `span`.
    pub fn new(span: Span, message: impl Into<String>) -> Self {
        ParseError {
            span,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.span.line, self.span.col, self.message)
    }
}

impl std::error::Error for ParseError {}

/// A term in the AST: variable (capitalized) or constant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TermAst {
    /// Uppercase-initial / underscore-initial identifier.
    Var(String),
    /// Lowercase identifier or number.
    Const(String),
}

/// An atom `p(t₁, …, t_k)` in the AST.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AtomAst {
    /// Predicate name.
    pub pred: String,
    /// Argument terms.
    pub args: Vec<TermAst>,
    /// Location of the predicate symbol.
    pub span: Span,
}

/// A rule in the AST.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RuleAst {
    /// Optional statement name.
    pub name: Option<String>,
    /// Body atoms.
    pub body: Vec<AtomAst>,
    /// Head atoms.
    pub head: Vec<AtomAst>,
    /// Location of the statement start.
    pub span: Span,
}

/// A top-level statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StmtAst {
    /// One or more fact atoms.
    Facts(Vec<AtomAst>),
    /// A rule.
    Rule(RuleAst),
    /// A named (or anonymous) boolean CQ.
    Query {
        /// Optional statement name.
        name: Option<String>,
        /// Query atoms.
        atoms: Vec<AtomAst>,
        /// Location of the statement start.
        span: Span,
    },
}

/// An answer query `?(X, Y) :- p(X, Z), q(Z, Y) ; r(X, Y)` at the AST
/// level: distinguished answer variables plus one or more disjuncts
/// (a UCQ). The boolean forms `?- p(X)` and a bare atom list parse as a
/// query with no answer variables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryAst {
    /// Answer (distinguished) variable names, in output order.
    pub answer_vars: Vec<String>,
    /// The disjuncts; entailed iff some disjunct matches.
    pub disjuncts: Vec<Vec<AtomAst>>,
    /// Location of the query start.
    pub span: Span,
}

pub(crate) struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    pub(crate) fn new(src: &str) -> Result<Self, ParseError> {
        Ok(Parser {
            tokens: Lexer::new(src).tokenize()?,
            pos: 0,
        })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn peek_kind(&self, ahead: usize) -> &TokenKind {
        let idx = (self.pos + ahead).min(self.tokens.len() - 1);
        &self.tokens[idx].kind
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<Token, ParseError> {
        if &self.peek().kind == kind {
            Ok(self.bump())
        } else {
            Err(ParseError::new(
                self.peek().span,
                format!("expected {what}, found {:?}", self.peek().kind),
            ))
        }
    }

    fn ident(&mut self, what: &str) -> Result<(String, Span), ParseError> {
        let span = self.peek().span;
        match self.bump().kind {
            TokenKind::Ident(s) => Ok((s, span)),
            other => Err(ParseError::new(
                span,
                format!("expected {what}, found {other:?}"),
            )),
        }
    }

    fn is_var_name(name: &str) -> bool {
        name.starts_with(|c: char| c.is_ascii_uppercase() || c == '_')
    }

    fn term(&mut self) -> Result<TermAst, ParseError> {
        let (name, _span) = self.ident("a term")?;
        Ok(if Self::is_var_name(&name) {
            TermAst::Var(name)
        } else {
            TermAst::Const(name)
        })
    }

    fn atom(&mut self) -> Result<AtomAst, ParseError> {
        let (pred, span) = self.ident("a predicate")?;
        if Self::is_var_name(&pred) {
            return Err(ParseError::new(
                span,
                format!("predicate `{pred}` must not start with an uppercase letter"),
            ));
        }
        let mut args = Vec::new();
        if self.peek().kind == TokenKind::LParen {
            self.bump();
            if self.peek().kind != TokenKind::RParen {
                loop {
                    args.push(self.term()?);
                    if self.peek().kind == TokenKind::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect(&TokenKind::RParen, "`)`")?;
        }
        Ok(AtomAst { pred, args, span })
    }

    fn atoms(&mut self) -> Result<Vec<AtomAst>, ParseError> {
        let mut out = vec![self.atom()?];
        while self.peek().kind == TokenKind::Comma {
            self.bump();
            out.push(self.atom()?);
        }
        Ok(out)
    }

    /// `name :` lookahead — an identifier followed by a colon.
    fn optional_name(&mut self) -> Option<String> {
        if let TokenKind::Ident(name) = self.peek_kind(0).clone() {
            if *self.peek_kind(1) == TokenKind::Colon {
                self.bump();
                self.bump();
                return Some(name);
            }
        }
        None
    }

    fn stmt(&mut self) -> Result<StmtAst, ParseError> {
        let span = self.peek().span;
        let name = self.optional_name();
        if self.peek().kind == TokenKind::QueryMark {
            self.bump();
            let atoms = self.atoms()?;
            self.expect(&TokenKind::Period, "`.`")?;
            return Ok(StmtAst::Query { name, atoms, span });
        }
        let first = self.atoms()?;
        match &self.peek().kind {
            TokenKind::Arrow => {
                self.bump();
                let head = self.atoms()?;
                self.expect(&TokenKind::Period, "`.`")?;
                Ok(StmtAst::Rule(RuleAst {
                    name,
                    body: first,
                    head,
                    span,
                }))
            }
            TokenKind::Period => {
                self.bump();
                if name.is_some() {
                    return Err(ParseError::new(span, "facts cannot carry a statement name"));
                }
                Ok(StmtAst::Facts(first))
            }
            other => Err(ParseError::new(
                self.peek().span,
                format!("expected `->` or `.`, found {other:?}"),
            )),
        }
    }

    /// One `;`-separated list of atom conjunctions (UCQ disjuncts).
    fn disjuncts(&mut self) -> Result<Vec<Vec<AtomAst>>, ParseError> {
        let mut out = vec![self.atoms()?];
        while self.peek().kind == TokenKind::Semi {
            self.bump();
            out.push(self.atoms()?);
        }
        Ok(out)
    }

    /// A standalone answer query (fragment grammar, not a program
    /// statement):
    ///
    /// ```text
    /// ?(X, Y) :- p(X, Z), q(Z, Y) ; r(X, Y).   % answer variables X, Y
    /// ?- p(X), q(X).                           % boolean (no answer vars)
    /// p(X), q(X)                               % boolean, bare atom list
    /// ```
    ///
    /// The trailing period is optional in all three forms.
    pub(crate) fn answer_query(&mut self) -> Result<QueryAst, ParseError> {
        let span = self.peek().span;
        let answer_vars = match &self.peek().kind {
            TokenKind::Question => {
                self.bump();
                self.expect(&TokenKind::LParen, "`(`")?;
                let mut vars = Vec::new();
                if self.peek().kind != TokenKind::RParen {
                    loop {
                        let (name, vspan) = self.ident("an answer variable")?;
                        if !Self::is_var_name(&name) {
                            return Err(ParseError::new(
                                vspan,
                                format!("answer position `{name}` must be a variable"),
                            ));
                        }
                        if vars.contains(&name) {
                            return Err(ParseError::new(
                                vspan,
                                format!("answer variable `{name}` is repeated"),
                            ));
                        }
                        vars.push(name);
                        if self.peek().kind == TokenKind::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(&TokenKind::RParen, "`)`")?;
                self.expect(&TokenKind::Turnstile, "`:-`")?;
                vars
            }
            TokenKind::QueryMark => {
                self.bump();
                Vec::new()
            }
            _ => Vec::new(),
        };
        let disjuncts = self.disjuncts()?;
        if self.peek().kind == TokenKind::Period {
            self.bump();
        }
        self.expect(&TokenKind::Eof, "end of query")?;
        Ok(QueryAst {
            answer_vars,
            disjuncts,
            span,
        })
    }

    pub(crate) fn program(&mut self) -> Result<Vec<StmtAst>, ParseError> {
        let mut out = Vec::new();
        while self.peek().kind != TokenKind::Eof {
            out.push(self.stmt()?);
        }
        Ok(out)
    }
}

/// Parses a source text into statements (AST level).
pub(crate) fn parse_stmts(src: &str) -> Result<Vec<StmtAst>, ParseError> {
    Parser::new(src)?.program()
}

/// Parses a standalone answer query (AST level).
pub(crate) fn parse_query_ast(src: &str) -> Result<QueryAst, ParseError> {
    Parser::new(src)?.answer_query()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_facts() {
        let stmts = parse_stmts("h(a, b). f(a).").unwrap();
        assert_eq!(stmts.len(), 2);
        assert!(matches!(&stmts[0], StmtAst::Facts(atoms) if atoms.len() == 1));
    }

    #[test]
    fn parses_named_rule() {
        let stmts = parse_stmts("R1: h(X, X) -> h(X, Y), c(Y).").unwrap();
        let StmtAst::Rule(rule) = &stmts[0] else {
            panic!("not a rule");
        };
        assert_eq!(rule.name.as_deref(), Some("R1"));
        assert_eq!(rule.body.len(), 1);
        assert_eq!(rule.head.len(), 2);
        assert_eq!(rule.head[0].args[1], TermAst::Var("Y".into()));
    }

    #[test]
    fn parses_query() {
        let stmts = parse_stmts("Q: ?- h(X, Y).").unwrap();
        assert!(matches!(&stmts[0], StmtAst::Query { name: Some(n), .. } if n == "Q"));
    }

    #[test]
    fn anonymous_rule_and_query() {
        let stmts = parse_stmts("p(X) -> q(X). ?- q(Z).").unwrap();
        assert!(matches!(&stmts[0], StmtAst::Rule(r) if r.name.is_none()));
        assert!(matches!(&stmts[1], StmtAst::Query { name: None, .. }));
    }

    #[test]
    fn zero_arity_atoms() {
        let stmts = parse_stmts("go. go -> done.").unwrap();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn rejects_uppercase_predicate() {
        let err = parse_stmts("Foo(a).").unwrap_err();
        assert!(err.message.contains("uppercase"));
    }

    #[test]
    fn rejects_missing_period() {
        assert!(parse_stmts("p(a)").is_err());
    }

    #[test]
    fn rejects_named_fact() {
        assert!(parse_stmts("F: p(a).").is_err());
    }

    #[test]
    fn multi_atom_fact_statement() {
        let stmts = parse_stmts("p(a), q(b).").unwrap();
        assert!(matches!(&stmts[0], StmtAst::Facts(atoms) if atoms.len() == 2));
    }

    #[test]
    fn answer_query_with_vars_and_disjuncts() {
        let q = parse_query_ast("?(X, Y) :- p(X, Z), q(Z, Y) ; r(X, Y).").unwrap();
        assert_eq!(q.answer_vars, vec!["X".to_owned(), "Y".to_owned()]);
        assert_eq!(q.disjuncts.len(), 2);
        assert_eq!(q.disjuncts[0].len(), 2);
        assert_eq!(q.disjuncts[1].len(), 1);
    }

    #[test]
    fn boolean_query_forms() {
        // `?-` prefix, trailing period optional.
        let q = parse_query_ast("?- p(X), q(X)").unwrap();
        assert!(q.answer_vars.is_empty());
        assert_eq!(q.disjuncts.len(), 1);
        assert_eq!(q.disjuncts[0].len(), 2);
        // Bare atom list stays accepted (legacy `decide` query strings).
        let q = parse_query_ast("p(X), q(X).").unwrap();
        assert!(q.answer_vars.is_empty());
        // Boolean UCQ.
        let q = parse_query_ast("?- p(X) ; q(X).").unwrap();
        assert_eq!(q.disjuncts.len(), 2);
    }

    #[test]
    fn zero_answer_vars_with_head() {
        let q = parse_query_ast("?() :- p(a).").unwrap();
        assert!(q.answer_vars.is_empty());
        assert_eq!(q.disjuncts.len(), 1);
    }

    #[test]
    fn rejects_bad_answer_heads() {
        // Constants can't be answer positions.
        let err = parse_query_ast("?(a) :- p(a).").unwrap_err();
        assert!(err.message.contains("must be a variable"));
        // Repeats are rejected.
        let err = parse_query_ast("?(X, X) :- p(X, X).").unwrap_err();
        assert!(err.message.contains("repeated"));
        // Missing `:-`.
        assert!(parse_query_ast("?(X) p(X).").is_err());
        // Trailing garbage after the query.
        assert!(parse_query_ast("p(X). q(X).").is_err());
    }
}
