//! # chase-parser
//!
//! A small datalog±-style text syntax for existential rules, facts and
//! conjunctive queries, with spanned error reporting.
//!
//! ## Syntax
//!
//! ```text
//! % comments run to end of line (also //)
//! h(a, b).                          % facts (constants are lowercase)
//! R1: h(X, X) -> h(X, Y), c(Y).    % rule; head-only vars are existential
//! Q1: ?- h(X, Y), c(Y).            % boolean conjunctive query
//! ```
//!
//! Standalone *answer queries* (not program statements) add
//! distinguished variables and UCQ disjunction:
//!
//! ```text
//! ?(X, Y) :- p(X, Z), q(Z, Y) ; r(X, Y).   % answer vars X, Y; two disjuncts
//! ?- p(X), q(X).                           % boolean query
//! p(X), q(X)                               % boolean, bare atom list
//! ```
//!
//! * Identifiers starting with an uppercase letter (or `_`) are
//!   **variables**, scoped to their statement (rule / query / fact
//!   statement).
//! * Lowercase identifiers and numbers in term position are **constants**;
//!   in predicate position they are predicate symbols (arity inferred and
//!   checked on first use).
//! * Statement names (`R1:`, `Q1:`) are optional.
//!
//! ## Entry points
//!
//! [`parse_program`] parses a whole source text into a [`Program`]
//! (vocabulary + facts + rules + named queries); [`parse_atoms_with`],
//! [`parse_rule_with`] and [`parse_query_with`] parse fragments against
//! an existing vocabulary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lexer;
mod lower;
mod parser_impl;
mod printer;

pub use lexer::{Lexer, Token, TokenKind};
pub use lower::{
    is_reserved_null_name, parse_atoms_with, parse_program, parse_program_trusted,
    parse_query_with, parse_query_with_trusted, parse_rule_with, ParsedQuery, Program,
};
pub use parser_impl::{AtomAst, ParseError, QueryAst, RuleAst, Span, StmtAst, TermAst};
pub use printer::{program_to_text, rule_to_text};
