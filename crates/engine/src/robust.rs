//! Robust renaming, robust sequences and robust aggregation —
//! Definitions 14–16 and Propositions 10–12 of the paper.
//!
//! The natural aggregation of a non-monotonic derivation can fail to be a
//! model (and can blow up structurally). The *robust aggregation* fixes
//! this: along the derivation, variables are renamed so that whenever a
//! simplification folds a variable class together, the class adopts the
//! **rank-smallest** name it ever had (Definition 14). Because a name can
//! only decrease in rank, and ranks are well-founded, every variable is
//! renamed finitely often (Proposition 10) — so the per-step atomsets
//! `G_i` (each isomorphic to `F_i`) converge: their "stabilized" parts
//! form a monotone sequence whose union `D^⊛` is a model (when the
//! derivation is fair) and finitely universal (Proposition 11), with
//! treewidth bounded by any recurring bound of the derivation
//! (Proposition 12).
//!
//! On the finite prefixes recorded by the chase runner, `D^⊛` is
//! approximated by the atoms that persist through the trailing `margin`
//! steps ([`RobustSequence::aggregation_prefix`]) — a liminf proxy that is
//! exact in the limit.

use std::collections::BTreeMap;

use chase_atoms::{AtomSet, Substitution, Term, VarId};
use chase_homomorphism::isomorphism;

use crate::derivation::Derivation;

/// The rank order on variables used by robust renaming (the paper's
/// bijection `rank : X → ℕ`). Smaller rank wins. The default rank is the
/// variable's raw index (creation order); the staircase worked example of
/// Section 8 uses a custom rank.
pub type RankFn<'a> = dyn Fn(VarId) -> u64 + 'a;

/// The default rank: creation order.
pub fn default_rank(v: VarId) -> u64 {
    u64::from(v.raw())
}

/// Computes the robust renaming `ρ_σ` associated with the retraction
/// `sigma` of `a` (Definition 14): each variable `X` of `sigma(a)` maps to
/// the rank-smallest variable of `σ⁻¹(X)`.
pub fn robust_renaming(a: &AtomSet, sigma: &Substitution, rank: &RankFn<'_>) -> Substitution {
    let image_vars = sigma.apply_set(a).vars();
    let mut best: BTreeMap<VarId, VarId> = BTreeMap::new();
    for y in a.vars() {
        if let Term::Var(x) = sigma.apply_term(Term::Var(y)) {
            if image_vars.contains(&x) {
                match best.get(&x) {
                    Some(&cur) if (rank(cur), cur) <= (rank(y), y) => {}
                    _ => {
                        best.insert(x, y);
                    }
                }
            }
        }
    }
    Substitution::from_pairs(best.into_iter().map(|(x, y)| (x, Term::Var(y)))).normalized()
}

/// The trace of one variable through the robust sequence: its successive
/// images under `τ_{i+1}, τ_{i+2}, …` and the point from which the image
/// stops changing within the recorded prefix.
#[derive(Clone, Debug)]
pub struct VarTrace {
    /// The variable traced (a variable of `G_start`).
    pub var: VarId,
    /// The step at which the trace starts.
    pub start: usize,
    /// `images[j]` is the image in `G_{start + j}` (so `images[0]` is the
    /// variable itself).
    pub images: Vec<Term>,
    /// The first step index (absolute) from which the image is constant
    /// until the end of the recorded prefix.
    pub settled_at: usize,
}

/// The robust sequence `(G_i)` associated with a derivation
/// (Definition 15), together with the isomorphisms `ρ_i : F_i → G_i` and
/// the homomorphisms `τ_i` connecting consecutive elements.
#[derive(Clone, Debug)]
pub struct RobustSequence {
    /// `G_i`, isomorphic to `F_i`.
    pub sets: Vec<AtomSet>,
    /// `ρ_i`: the isomorphism from `F_i` to `G_i`.
    pub rho: Vec<Substitution>,
    /// `τ_i`: for `i ≥ 1` the homomorphism `A'_i → G_i` (which maps
    /// `G_{i-1} ⊆ A'_i` into `G_i`); `τ_0` maps the original facts `F`
    /// to `G_0`.
    pub tau: Vec<Substitution>,
}

impl RobustSequence {
    /// Builds the robust sequence of a recorded derivation under the
    /// default rank (creation order).
    pub fn build(d: &Derivation) -> Self {
        Self::build_with_rank(d, &default_rank)
    }

    /// Builds the robust sequence under a custom rank order.
    ///
    /// Follows Definition 15 literally:
    ///
    /// * `G_0 = ρ_{σ_0}(F_0)`;
    /// * for `i > 0`: `A'_i = ρ_{i-1}(A_i)` (fresh nulls are untouched),
    ///   `σ'_i = ρ_{i-1} ∘ σ_i ∘ ρ_{i-1}^{-1}` (a retraction of `A'_i`),
    ///   `G_i = ρ_{σ'_i}(σ'_i(A'_i))`, `ρ_i = ρ_{σ'_i} ∘ ρ_{i-1}` and
    ///   `τ_i = ρ_{σ'_i} ∘ σ'_i`.
    pub fn build_with_rank(d: &Derivation, rank: &RankFn<'_>) -> Self {
        let mut sets = Vec::with_capacity(d.len());
        let mut rho: Vec<Substitution> = Vec::with_capacity(d.len());
        let mut tau = Vec::with_capacity(d.len());

        // Step 0.
        let f = d.initial();
        let sigma0 = &d.steps()[0].simplification;
        let rho0 = robust_renaming(f, sigma0, rank);
        let g0 = rho0.apply_set(d.instance(0));
        sets.push(g0);
        tau.push(sigma0.then(&rho0));
        rho.push(rho0);

        for i in 1..d.len() {
            let rho_prev = &rho[i - 1];
            let rho_prev_inv = rho_prev
                .inverse()
                .expect("ρ is a variable renaming, hence invertible");
            let a_i = d.pre_instance(i);
            let a_prime = rho_prev.apply_set(&a_i);
            let sigma_i = &d.steps()[i].simplification;
            // σ'_i = ρ_{i-1} ∘ σ_i ∘ ρ_{i-1}^{-1}, built explicitly on the
            // variables of A'_i.
            let mut sigma_prime = Substitution::new();
            for y in a_prime.vars() {
                let orig = rho_prev_inv.apply_term(Term::Var(y));
                let img = rho_prev.apply_term(sigma_i.apply_term(orig));
                if img != Term::Var(y) {
                    sigma_prime.bind(y, img);
                }
            }
            debug_assert!(sigma_prime.is_retraction_of(&a_prime));
            let f_prime = sigma_prime.apply_set(&a_prime);
            let rho_sigma = robust_renaming(&a_prime, &sigma_prime, rank);
            let g_i = rho_sigma.apply_set(&f_prime);
            let tau_i = sigma_prime.then(&rho_sigma);
            let rho_i = rho_prev.then(&rho_sigma);
            // ρ_i must stay a pure variable renaming on vars(F_i); keep
            // only those bindings.
            let rho_i = rho_i.restrict(&d.instance(i).vars()).normalized();
            sets.push(g_i);
            tau.push(tau_i);
            rho.push(rho_i);
        }
        RobustSequence { sets, rho, tau }
    }

    /// Number of elements (same as the derivation length).
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Always false.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// The composed map `τ_j ∘ … ∘ τ_{i+1}` sending `G_i` into `G_j`
    /// (identity when `i = j`).
    pub fn tau_span(&self, i: usize, j: usize) -> Substitution {
        assert!(i <= j && j < self.len());
        let mut composed = Substitution::new();
        for k in i + 1..=j {
            composed = composed.then(&self.tau[k]);
        }
        composed
    }

    /// Traces a variable of `G_start` through the remaining prefix
    /// (Proposition 10 instrumentation).
    pub fn trace_var(&self, start: usize, var: VarId) -> VarTrace {
        let mut images = vec![Term::Var(var)];
        let mut current = Term::Var(var);
        for k in start + 1..self.len() {
            current = match current {
                Term::Var(_) => self.tau[k].apply_term(current),
                c => c,
            };
            images.push(current);
        }
        // Find the earliest suffix on which the image is constant.
        let last = *images.last().expect("nonempty");
        let mut settled_rel = images.len() - 1;
        while settled_rel > 0 && images[settled_rel - 1] == last {
            settled_rel -= 1;
        }
        VarTrace {
            var,
            start,
            images,
            settled_at: start + settled_rel,
        }
    }

    /// The liminf proxy for the robust aggregation `D^⊛` on this prefix:
    /// the atoms present in **every** one of the trailing `margin + 1`
    /// sets `G_{k-margin} … G_k`.
    ///
    /// Rationale: `D^⊛ = ⋃_i τ̂(G_i)` consists of atoms that are
    /// *eventually always* present in the robust sequence (Lemma 1), i.e.
    /// `D^⊛ = liminf G_i`. Atoms of the intersection above are exactly
    /// those that have persisted for at least `margin` steps at the
    /// horizon; as the prefix grows (for fixed margin) the result
    /// converges to `D^⊛` from below/above mixtures vanish.
    pub fn aggregation_prefix(&self, margin: usize) -> AtomSet {
        let k = self.len() - 1;
        let from = k.saturating_sub(margin);
        let mut result = self.sets[from].clone();
        for j in from + 1..=k {
            let keep: Vec<chase_atoms::Atom> = result
                .iter()
                .filter(|a| self.sets[j].contains(a))
                .cloned()
                .collect();
            result = keep.into_iter().collect();
        }
        result
    }

    /// Verifies the Definition 15 invariants against the originating
    /// derivation:
    ///
    /// 1. every `G_i` is isomorphic to `F_i`, witnessed by `ρ_i`;
    /// 2. every `τ_i` (`i ≥ 1`) maps `G_{i-1}` into `G_i`;
    /// 3. `τ_0` maps the original facts into `G_0`.
    pub fn verify_invariants(&self, d: &Derivation) -> Result<(), String> {
        for i in 0..self.len() {
            let f_i = d.instance(i);
            let g_i = &self.sets[i];
            if self.rho[i].apply_set(f_i) != *g_i {
                return Err(format!("ρ_{i} does not map F_{i} onto G_{i}"));
            }
            if isomorphism(f_i, g_i).is_none() {
                return Err(format!("G_{i} is not isomorphic to F_{i}"));
            }
            if i == 0 {
                if !self.tau[0].is_homomorphism(d.initial(), g_i) {
                    return Err("τ_0 is not a homomorphism from F to G_0".into());
                }
            } else if !self.tau[i].is_homomorphism(&self.sets[i - 1], g_i) {
                return Err(format!("τ_{i} does not map G_{} into G_{i}", i - 1));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase::{run_chase, ChaseConfig, ChaseVariant};
    use crate::rule::{Rule, RuleSet};
    use chase_atoms::{Atom, PredId, Vocabulary};

    fn v(i: u32) -> Term {
        Term::Var(VarId::from_raw(i))
    }

    fn vid(i: u32) -> VarId {
        VarId::from_raw(i)
    }

    fn atom(pr: u32, args: &[Term]) -> Atom {
        Atom::new(PredId::from_raw(pr), args.to_vec())
    }

    fn set(atoms: &[Atom]) -> AtomSet {
        atoms.iter().cloned().collect()
    }

    #[test]
    fn robust_renaming_picks_rank_smallest_preimage() {
        // a = {r(0,1), r(1,1)}, σ: 0 ↦ 1. Then σ⁻¹(1) = {0, 1} and the
        // renaming maps 1 ↦ 0 (rank-smallest).
        let a = set(&[atom(0, &[v(0), v(1)]), atom(0, &[v(1), v(1)])]);
        let sigma = Substitution::from_pairs([(vid(0), v(1))]);
        assert!(sigma.is_retraction_of(&a));
        let rho = robust_renaming(&a, &sigma, &default_rank);
        assert_eq!(rho.apply_term(v(1)), v(0));
        // τ_σ = ρ_σ ∘ σ maps both 0 and 1 to 0.
        let tau = sigma.then(&rho);
        assert_eq!(tau.apply_term(v(0)), v(0));
        assert_eq!(tau.apply_term(v(1)), v(0));
    }

    #[test]
    fn robust_renaming_identity_for_identity_retraction() {
        let a = set(&[atom(0, &[v(0), v(1)])]);
        let rho = robust_renaming(&a, &Substitution::new(), &default_rank);
        assert!(rho.is_empty());
    }

    #[test]
    fn custom_rank_changes_choice() {
        let a = set(&[atom(0, &[v(0), v(1)]), atom(0, &[v(1), v(1)])]);
        let sigma = Substitution::from_pairs([(vid(0), v(1))]);
        // Reverse rank: larger raw id = smaller rank.
        let rank = |x: VarId| u64::MAX - u64::from(x.raw());
        let rho = robust_renaming(&a, &sigma, &rank);
        // Preimage of 1 is {0, 1}; rank-min is now 1 itself.
        assert!(rho.is_empty());
    }

    /// Core chase on r(X,Y) → ∃Z. r(Y,Z) from r(c?, …): use a shifting
    /// scenario where the core chase repeatedly folds the tail.
    fn shifting_chase() -> (Derivation, Vocabulary) {
        // Rule: f(X) ∧ r(X, Y) → ∃Z. r(Y, Z) ∧ f(Y)  — marks move along.
        // Combined with a "cleanup" the core chase folds old tails. For a
        // compact test we use the simpler rule r(X,Y) → ∃Z. r(Y,Z): the
        // core chase from a 2-path keeps producing paths that fold back…
        // actually a path is a core, so no folding happens; instead use
        // facts with a loop far away that lets folds happen:
        // facts: r(10, 11); rule as above. Restricted chase grows a path —
        // each F_i is a core already, so the robust sequence is just a
        // renaming exercise. Good enough to exercise the machinery; the
        // staircase KB (chase-kbs) exercises real folding.
        let rules: RuleSet = [Rule::new(
            "chain",
            set(&[atom(0, &[v(0), v(1)])]),
            set(&[atom(0, &[v(1), v(2)])]),
        )
        .unwrap()]
        .into_iter()
        .collect();
        let facts = set(&[atom(0, &[v(10), v(11)])]);
        let mut vocab = Vocabulary::new();
        vocab.ensure_var(vid(99));
        let cfg = ChaseConfig::variant(ChaseVariant::Core).with_max_applications(5);
        let res = run_chase(&mut vocab, &facts, &rules, &cfg);
        (res.derivation.unwrap(), vocab)
    }

    #[test]
    fn robust_sequence_invariants_hold() {
        let (d, _vocab) = shifting_chase();
        let rs = RobustSequence::build(&d);
        assert_eq!(rs.len(), d.len());
        assert_eq!(rs.verify_invariants(&d), Ok(()));
    }

    #[test]
    fn monotonic_derivation_gives_identity_robust_maps() {
        let (d, _vocab) = shifting_chase();
        // This particular chase never folds (paths are cores), so all σ_i
        // are identities and G_i = F_i.
        let rs = RobustSequence::build(&d);
        for i in 0..d.len() {
            assert_eq!(&rs.sets[i], d.instance(i));
            assert!(rs.rho[i].is_empty());
        }
        // The aggregation prefix with margin 0 is just the last set.
        assert_eq!(rs.aggregation_prefix(0), *d.last_instance());
    }

    #[test]
    fn folding_scenario_produces_stable_names() {
        // Build a derivation by hand that folds a variable, and check the
        // robust sequence adopts the rank-smallest name.
        // facts F: {r(10,11)}; apply chain rule: A_1 = {r(10,11), r(11,N)};
        // σ_1 folds… nothing is foldable. Instead craft directly:
        // F = {r(10,11), r(11,12), r(12,12)}  (path into a loop)
        // σ_0 = core retraction: folds 10, 11 away? core is the loop:
        // σ_0: 10↦12, 11↦12. Robust renaming: preimage of 12 is
        // {10,11,12} ⇒ G_0 names the loop variable 10.
        let rules: RuleSet = [Rule::new(
            "dummy",
            set(&[atom(0, &[v(0), v(1)])]),
            set(&[atom(0, &[v(0), v(1)])]),
        )
        .unwrap()]
        .into_iter()
        .collect();
        let facts = set(&[
            atom(0, &[v(10), v(11)]),
            atom(0, &[v(11), v(12)]),
            atom(0, &[v(12), v(12)]),
        ]);
        let core = chase_homomorphism::core_of(&facts);
        let d = Derivation::start(rules, facts, core.retraction);
        let rs = RobustSequence::build(&d);
        assert_eq!(rs.sets[0], set(&[atom(0, &[v(10), v(10)])]));
        assert_eq!(rs.verify_invariants(&d), Ok(()));
    }

    #[test]
    fn var_trace_settles() {
        let (d, _vocab) = shifting_chase();
        let rs = RobustSequence::build(&d);
        let some_var = *rs.sets[0].vars().iter().next().unwrap();
        let trace = rs.trace_var(0, some_var);
        assert_eq!(trace.images.len(), rs.len());
        assert!(trace.settled_at < rs.len());
        // In this monotonic case nothing ever moves.
        assert_eq!(trace.settled_at, 0);
    }

    #[test]
    fn tau_span_composes() {
        let (d, _vocab) = shifting_chase();
        let rs = RobustSequence::build(&d);
        let span = rs.tau_span(0, rs.len() - 1);
        assert!(span.is_homomorphism(&rs.sets[0], &rs.sets[rs.len() - 1]));
    }
}
