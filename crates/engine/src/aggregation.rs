//! The natural aggregation `D* = ⋃_i F_i` of Section 3.
//!
//! On a recorded finite prefix this is the union of all recorded
//! instances; for monotonic derivations it equals the final instance. The
//! paper's Proposition 1 shows `D*` is always *universal* for the KB but —
//! for non-monotonic derivations — not necessarily a model (the steepening
//! staircase makes this concrete: its core-chase `D*` even has unbounded
//! treewidth while every chase element has treewidth ≤ 2).

use chase_atoms::AtomSet;

use crate::derivation::Derivation;

/// The natural aggregation of the recorded prefix: `⋃_{i ≤ k} F_i`.
pub fn natural_aggregation(d: &Derivation) -> AtomSet {
    let mut out = AtomSet::new();
    for f in d.instances() {
        out.union_with(f);
    }
    out
}

/// The natural aggregation of an explicit sequence of instances.
pub fn union_of(instances: &[AtomSet]) -> AtomSet {
    let mut out = AtomSet::new();
    for f in instances {
        out.union_with(f);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase::{run_chase, ChaseConfig, ChaseVariant};
    use crate::rule::{Rule, RuleSet};
    use chase_atoms::{Atom, PredId, Term, VarId, Vocabulary};

    fn v(i: u32) -> Term {
        Term::Var(VarId::from_raw(i))
    }

    fn atom(pr: u32, args: &[Term]) -> Atom {
        Atom::new(PredId::from_raw(pr), args.to_vec())
    }

    fn set(atoms: &[Atom]) -> AtomSet {
        atoms.iter().cloned().collect()
    }

    #[test]
    fn monotonic_aggregation_equals_final() {
        let rules: RuleSet = [Rule::new(
            "chain",
            set(&[atom(0, &[v(0), v(1)])]),
            set(&[atom(0, &[v(1), v(2)])]),
        )
        .unwrap()]
        .into_iter()
        .collect();
        let facts = set(&[atom(0, &[v(10), v(11)])]);
        let mut vocab = Vocabulary::new();
        vocab.ensure_var(VarId::from_raw(99));
        let cfg = ChaseConfig::variant(ChaseVariant::Restricted).with_max_applications(4);
        let res = run_chase(&mut vocab, &facts, &rules, &cfg);
        let d = res.derivation.unwrap();
        assert!(d.is_monotonic());
        assert_eq!(&natural_aggregation(&d), d.last_instance());
    }

    #[test]
    fn union_of_collects_everything() {
        let a = set(&[atom(0, &[v(0)])]);
        let b = set(&[atom(0, &[v(1)])]);
        let u = union_of(&[a.clone(), b.clone()]);
        assert_eq!(u.len(), 2);
        assert!(a.is_subset_of(&u) && b.is_subset_of(&u));
    }

    #[test]
    fn nonmonotonic_aggregation_keeps_folded_atoms() {
        // Core chase that folds an initial redundancy: D* still contains
        // the folded atom.
        let rules: RuleSet = [Rule::new(
            "noop",
            set(&[atom(0, &[v(0), v(1)])]),
            set(&[atom(1, &[v(0)])]),
        )
        .unwrap()]
        .into_iter()
        .collect();
        let facts = set(&[atom(0, &[v(10), v(11)]), atom(0, &[v(10), v(10)])]);
        let mut vocab = Vocabulary::new();
        vocab.ensure_var(VarId::from_raw(99));
        let res = run_chase(
            &mut vocab,
            &facts,
            &rules,
            &ChaseConfig::variant(ChaseVariant::Core),
        );
        let d = res.derivation.unwrap();
        let agg = natural_aggregation(&d);
        // σ_0 folded r(10,11) away, yet F (as recorded F_0) no longer has
        // it; the aggregation is over F_i, so it contains everything that
        // ever *survived* a simplification:
        assert!(d.instance(0).is_subset_of(&agg));
        assert!(res.final_instance.is_subset_of(&agg));
    }
}
