//! Cooperative run control for long chase derivations: cancellation
//! tokens and the step-observer event stream.
//!
//! The paper's interesting derivations do not terminate (the staircase
//! `K_h` and elevator `K_v` of Sections 6–7 are *designed* not to), so a
//! production runner cannot treat `run_chase` as a blocking black box.
//! This module provides the two hooks the job-runner layer
//! (`treechase-service`) builds on:
//!
//! * [`CancelToken`] — a shared flag the chase loop polls between trigger
//!   applications. Cancellation is cooperative: a pending application
//!   (including its per-step core computation) finishes, then the run
//!   stops with [`crate::ChaseOutcome::Cancelled`]. On the workloads of
//!   the paper a single step is far below the 100 ms latency envelope.
//! * [`ChaseEvent`] — the in-band progress stream handed to the observer
//!   of [`crate::chase::run_chase_controlled`]: round boundaries, applied
//!   steps and core retractions, each carrying the running
//!   [`crate::ChaseStats`].

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use chase_atoms::{AtomSet, Vocabulary};
use chase_homomorphism::MatchStats;

use crate::chase::ChaseStats;
use crate::prng::SplitMix64;

/// A cloneable cancellation flag shared between a chase run and its
/// controller. All clones observe the same flag.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// The underlying shared flag, for wiring the token into a
    /// [`chase_homomorphism::SearchBudget`] so that retraction searches
    /// *inside* a core step observe the cancel, not just the between-steps
    /// polls.
    pub fn flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.flag)
    }
}

/// One deterministic fault site of a [`FaultPlan`].
///
/// Counts are 1-based and *process-global per plan*: clones of a plan
/// share the same counters, so a site fires at most once even when the
/// run that hit it is retried in the same process (the supervision layer
/// of `treechase-service` relies on this to converge).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultSite {
    /// Panic when the `k`-th trigger application (counted across every
    /// run sharing the plan) lands.
    Application(usize),
    /// Panic when the `k`-th in-loop core phase begins.
    CorePhase(usize),
    /// Fail the `k`-th durable checkpoint write (surfaced as an I/O-style
    /// error by the checkpoint store, not a panic).
    CheckpointWrite(usize),
    /// Report synthetic memory pressure at the `k`-th trigger
    /// application: the engine treats it as a hard memory-ceiling hit and
    /// suspends cleanly — overload paths become testable without
    /// allocating real memory.
    MemoryPressure(usize),
    /// Sleep for the given number of milliseconds at the `k`-th trigger
    /// application, simulating a slow step (for deadline and drain
    /// testing).
    Slow(usize, u64),
}

#[derive(Debug, Default)]
struct FaultInner {
    sites: Vec<FaultSite>,
    applications: AtomicUsize,
    core_phases: AtomicUsize,
    checkpoint_writes: AtomicUsize,
    mem_checks: AtomicUsize,
    slow_checks: AtomicUsize,
}

/// A deterministic, shareable fault-injection plan for crash testing.
///
/// The engine and the checkpoint store consult the plan at well-defined
/// sites; each [`FaultSite`] fires exactly once because the counters are
/// strictly monotone and shared across clones. An empty plan never fires.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    inner: Arc<FaultInner>,
}

impl FaultPlan {
    /// Builds a plan from explicit sites.
    pub fn new(sites: Vec<FaultSite>) -> Self {
        FaultPlan {
            inner: Arc::new(FaultInner {
                sites,
                ..FaultInner::default()
            }),
        }
    }

    /// Builds a plan of `kills` application-crash sites drawn without
    /// replacement from `1..=horizon` by the seeded local PRNG.
    pub fn seeded(seed: u64, kills: usize, horizon: usize) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut picks: Vec<usize> = Vec::new();
        while picks.len() < kills.min(horizon.max(1)) {
            let k = rng.gen_range(horizon.max(1)) + 1;
            if !picks.contains(&k) {
                picks.push(k);
            }
        }
        picks.sort_unstable();
        FaultPlan::new(picks.into_iter().map(FaultSite::Application).collect())
    }

    /// The configured sites, for display and logging.
    pub fn sites(&self) -> &[FaultSite] {
        &self.inner.sites
    }

    /// Does the plan contain no sites at all?
    pub fn is_empty(&self) -> bool {
        self.inner.sites.is_empty()
    }

    fn hit(
        &self,
        count: &AtomicUsize,
        matches: impl Fn(&FaultSite) -> Option<usize>,
    ) -> Option<usize> {
        let n = count.fetch_add(1, Ordering::AcqRel) + 1;
        self.inner
            .sites
            .iter()
            .filter_map(matches)
            .any(|k| k == n)
            .then_some(n)
    }

    /// Advances the application counter; `Some(n)` means "crash now, at
    /// application #n".
    pub fn on_application(&self) -> Option<usize> {
        self.hit(&self.inner.applications, |s| match s {
            FaultSite::Application(k) => Some(*k),
            _ => None,
        })
    }

    /// Advances the core-phase counter; `Some(n)` means "crash now, in
    /// core phase #n".
    pub fn on_core_phase(&self) -> Option<usize> {
        self.hit(&self.inner.core_phases, |s| match s {
            FaultSite::CorePhase(k) => Some(*k),
            _ => None,
        })
    }

    /// Advances the checkpoint-write counter; `Some(n)` means "fail this
    /// write, the #n-th".
    pub fn on_checkpoint_write(&self) -> Option<usize> {
        self.hit(&self.inner.checkpoint_writes, |s| match s {
            FaultSite::CheckpointWrite(k) => Some(*k),
            _ => None,
        })
    }

    /// Advances the memory-pressure counter (one tick per trigger
    /// application); `Some(n)` means "pretend the hard memory ceiling was
    /// hit at application #n".
    pub fn on_memory_pressure(&self) -> Option<usize> {
        self.hit(&self.inner.mem_checks, |s| match s {
            FaultSite::MemoryPressure(k) => Some(*k),
            _ => None,
        })
    }

    /// Advances the slow-step counter (one tick per trigger application);
    /// `Some(ms)` means "sleep `ms` milliseconds before continuing".
    pub fn on_slow(&self) -> Option<u64> {
        let n = self.inner.slow_checks.fetch_add(1, Ordering::AcqRel) + 1;
        self.inner.sites.iter().find_map(|s| match s {
            FaultSite::Slow(k, ms) if *k == n => Some(*ms),
            _ => None,
        })
    }
}

/// One progress event of a controlled chase run.
///
/// Borrowed data stays valid only for the duration of the observer call —
/// observers that stream events elsewhere copy what they need (typically
/// the stats and instance sizes, not the instance itself).
#[derive(Debug)]
pub enum ChaseEvent<'a> {
    /// A fairness round begins with `pending` triggers snapshotted.
    RoundStarted {
        /// 1-based round number.
        round: usize,
        /// Triggers in this round's snapshot.
        pending: usize,
    },
    /// A trigger was applied; `instance` is the freshly produced `F_i`.
    StepApplied {
        /// The instance after the application (and its simplification).
        instance: &'a AtomSet,
        /// The live vocabulary, including nulls minted so far — what a
        /// checkpointing observer needs to serialize `instance`.
        vocab: &'a Vocabulary,
        /// Running counters.
        stats: &'a ChaseStats,
    },
    /// The run crossed its soft memory ceiling and degraded: an immediate
    /// core retraction pass was forced (core variant) and the retraction
    /// search budget was shrunk. Emitted once per run, on the crossing.
    Degraded {
        /// Abstract memory units (atoms + nulls minted + pending queue
        /// entries) at the crossing.
        mem_units: usize,
        /// The soft ceiling that was crossed.
        soft_limit: usize,
        /// Running counters.
        stats: &'a ChaseStats,
    },
    /// A core-chase simplification strictly shrank the instance.
    CoreRetracted {
        /// Atoms before the retraction (`A_i`).
        before: usize,
        /// Atoms after (`F_i`).
        after: usize,
        /// Matcher counters for this core phase (nodes explored, fold
        /// candidates probed, budget truncation).
        match_stats: MatchStats,
        /// Running counters.
        stats: &'a ChaseStats,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_sites_fire_exactly_once_across_clones() {
        let plan = FaultPlan::new(vec![
            FaultSite::Application(2),
            FaultSite::CorePhase(1),
            FaultSite::CheckpointWrite(3),
        ]);
        let clone = plan.clone();
        assert_eq!(plan.on_application(), None); // #1
        assert_eq!(clone.on_application(), Some(2)); // #2 fires, shared counter
        assert_eq!(plan.on_application(), None); // #3: monotone, never re-fires
        assert_eq!(plan.on_core_phase(), Some(1));
        assert_eq!(clone.on_core_phase(), None);
        assert_eq!(plan.on_checkpoint_write(), None);
        assert_eq!(plan.on_checkpoint_write(), None);
        assert_eq!(clone.on_checkpoint_write(), Some(3));
        assert_eq!(clone.on_checkpoint_write(), None);
    }

    #[test]
    fn memory_and_slow_sites_fire_once_at_their_application() {
        let plan = FaultPlan::new(vec![FaultSite::MemoryPressure(2), FaultSite::Slow(1, 7)]);
        let clone = plan.clone();
        assert_eq!(plan.on_slow(), Some(7)); // application #1
        assert_eq!(plan.on_memory_pressure(), None);
        assert_eq!(clone.on_slow(), None); // application #2, shared counter
        assert_eq!(clone.on_memory_pressure(), Some(2));
        assert_eq!(plan.on_slow(), None); // #3: monotone, never re-fires
        assert_eq!(plan.on_memory_pressure(), None);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_in_range() {
        let a = FaultPlan::seeded(42, 2, 50);
        let b = FaultPlan::seeded(42, 2, 50);
        assert_eq!(a.sites(), b.sites());
        assert_eq!(a.sites().len(), 2);
        for s in a.sites() {
            let FaultSite::Application(k) = s else {
                panic!("seeded plans only produce application sites");
            };
            assert!((1..=50).contains(k));
        }
        assert!(FaultPlan::default().is_empty());
    }

    #[test]
    fn token_clones_share_the_flag() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!t.is_cancelled() && !u.is_cancelled());
        u.cancel();
        assert!(t.is_cancelled() && u.is_cancelled());
        t.cancel(); // idempotent
        assert!(t.is_cancelled());
    }
}
