//! Cooperative run control for long chase derivations: cancellation
//! tokens and the step-observer event stream.
//!
//! The paper's interesting derivations do not terminate (the staircase
//! `K_h` and elevator `K_v` of Sections 6–7 are *designed* not to), so a
//! production runner cannot treat `run_chase` as a blocking black box.
//! This module provides the two hooks the job-runner layer
//! (`treechase-service`) builds on:
//!
//! * [`CancelToken`] — a shared flag the chase loop polls between trigger
//!   applications. Cancellation is cooperative: a pending application
//!   (including its per-step core computation) finishes, then the run
//!   stops with [`crate::ChaseOutcome::Cancelled`]. On the workloads of
//!   the paper a single step is far below the 100 ms latency envelope.
//! * [`ChaseEvent`] — the in-band progress stream handed to the observer
//!   of [`crate::chase::run_chase_controlled`]: round boundaries, applied
//!   steps and core retractions, each carrying the running
//!   [`crate::ChaseStats`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use chase_atoms::AtomSet;
use chase_homomorphism::MatchStats;

use crate::chase::ChaseStats;

/// A cloneable cancellation flag shared between a chase run and its
/// controller. All clones observe the same flag.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// The underlying shared flag, for wiring the token into a
    /// [`chase_homomorphism::SearchBudget`] so that retraction searches
    /// *inside* a core step observe the cancel, not just the between-steps
    /// polls.
    pub fn flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.flag)
    }
}

/// One progress event of a controlled chase run.
///
/// Borrowed data stays valid only for the duration of the observer call —
/// observers that stream events elsewhere copy what they need (typically
/// the stats and instance sizes, not the instance itself).
#[derive(Debug)]
pub enum ChaseEvent<'a> {
    /// A fairness round begins with `pending` triggers snapshotted.
    RoundStarted {
        /// 1-based round number.
        round: usize,
        /// Triggers in this round's snapshot.
        pending: usize,
    },
    /// A trigger was applied; `instance` is the freshly produced `F_i`.
    StepApplied {
        /// The instance after the application (and its simplification).
        instance: &'a AtomSet,
        /// Running counters.
        stats: &'a ChaseStats,
    },
    /// A core-chase simplification strictly shrank the instance.
    CoreRetracted {
        /// Atoms before the retraction (`A_i`).
        before: usize,
        /// Atoms after (`F_i`).
        after: usize,
        /// Matcher counters for this core phase (nodes explored, fold
        /// candidates probed, budget truncation).
        match_stats: MatchStats,
        /// Running counters.
        stats: &'a ChaseStats,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_clones_share_the_flag() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!t.is_cancelled() && !u.is_cancelled());
        u.cancel();
        assert!(t.is_cancelled() && u.is_cancelled());
        t.cancel(); // idempotent
        assert!(t.is_cancelled());
    }
}
