//! Derivations (Definition 1), trace maps (Definition 2) and fairness
//! checks (Definition 3).

use chase_atoms::{AtomSet, Substitution, Vocabulary};

use crate::rule::RuleSet;
use crate::trigger::{all_triggers, Trigger};

/// One element of a derivation: `(tr_i, σ_i, F_i)` plus the bookkeeping
/// needed to reconstruct the pre-simplification instance
/// `A_i = α(F_{i-1}, tr_i)`.
#[derive(Clone, Debug)]
pub struct DerivationStep {
    /// The trigger applied at this step (`None` for step 0).
    pub trigger: Option<Trigger>,
    /// The safe substitution used by the application (`π` on the frontier
    /// plus fresh nulls for existentials); `None` for step 0.
    pub pi_safe: Option<Substitution>,
    /// The simplification `σ_i` — a retraction of `A_i` with
    /// `F_i = σ_i(A_i)`.
    pub simplification: Substitution,
    /// The instance `F_i`.
    pub instance: AtomSet,
}

/// A recorded (finite prefix of a) derivation
/// `D = ((tr_i, σ_i, F_i))_{i}` from a knowledge base `(F, Σ)`.
#[derive(Clone, Debug)]
pub struct Derivation {
    rules: RuleSet,
    initial: AtomSet,
    steps: Vec<DerivationStep>,
}

impl Derivation {
    /// Starts a derivation: records step 0 with `F_0 = σ_0(F)`.
    pub fn start(rules: RuleSet, initial: AtomSet, sigma0: Substitution) -> Self {
        let f0 = sigma0.apply_set(&initial);
        Derivation {
            rules,
            initial,
            steps: vec![DerivationStep {
                trigger: None,
                pi_safe: None,
                simplification: sigma0,
                instance: f0,
            }],
        }
    }

    /// Appends step `i`: `F_i = σ(α(F_{i-1}, tr))`.
    pub fn push_step(
        &mut self,
        trigger: Trigger,
        pi_safe: Substitution,
        simplification: Substitution,
        instance: AtomSet,
    ) {
        self.steps.push(DerivationStep {
            trigger: Some(trigger),
            pi_safe: Some(pi_safe),
            simplification,
            instance,
        });
    }

    /// The rule set `Σ`.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// The original fact set `F` (before `σ_0`).
    pub fn initial(&self) -> &AtomSet {
        &self.initial
    }

    /// Number of recorded elements (including step 0), i.e. `k + 1` for a
    /// derivation `(F_i)_{0 ≤ i ≤ k}`.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Always false — a derivation records at least `F_0`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The step records.
    pub fn steps(&self) -> &[DerivationStep] {
        &self.steps
    }

    /// The instance `F_i`.
    pub fn instance(&self, i: usize) -> &AtomSet {
        &self.steps[i].instance
    }

    /// The final recorded instance.
    pub fn last_instance(&self) -> &AtomSet {
        &self
            .steps
            .last()
            .expect("derivation is never empty")
            .instance
    }

    /// All instances `F_0 … F_k` in order.
    pub fn instances(&self) -> impl Iterator<Item = &AtomSet> {
        self.steps.iter().map(|s| &s.instance)
    }

    /// Reconstructs the pre-simplification instance
    /// `A_i = α(F_{i-1}, tr_i)` (for `i = 0`, the original facts `F`).
    pub fn pre_instance(&self, i: usize) -> AtomSet {
        if i == 0 {
            return self.initial.clone();
        }
        let step = &self.steps[i];
        let trigger = step.trigger.as_ref().expect("step > 0 has a trigger");
        let pi_safe = step.pi_safe.as_ref().expect("step > 0 has pi_safe");
        let mut a = self.steps[i - 1].instance.clone();
        for atom in self.rules.get(trigger.rule).head().iter() {
            a.insert(pi_safe.apply_atom(atom));
        }
        a
    }

    /// The trace map `σ_i^j = σ_j ∘ … ∘ σ_{i+1}` of Definition 2
    /// (identity when `i = j`).
    pub fn trace(&self, i: usize, j: usize) -> Substitution {
        assert!(i <= j && j < self.steps.len());
        let mut composed = Substitution::new();
        for k in i + 1..=j {
            composed = composed.then(&self.steps[k].simplification);
        }
        composed
    }

    /// Is the derivation monotonic (`F_{i-1} ⊆ F_i` for all `i`)?
    pub fn is_monotonic(&self) -> bool {
        self.steps
            .windows(2)
            .all(|w| w[0].instance.is_subset_of(&w[1].instance))
    }

    /// Checks the Definition 1 invariants on every recorded step:
    ///
    /// 1. `tr_i` is a trigger for `F_{i-1}` that is *not satisfied* in
    ///    `F_{i-1}`;
    /// 2. `σ_i` is a retraction of `A_i = α(F_{i-1}, tr_i)`;
    /// 3. `F_i = σ_i(A_i)`.
    ///
    /// Returns the index of the first violating step, if any.
    pub fn validate(&self) -> Result<(), usize> {
        // Step 0: σ_0 retraction of F with F_0 = σ_0(F).
        let s0 = &self.steps[0];
        if !s0.simplification.is_retraction_of(&self.initial)
            || s0.simplification.apply_set(&self.initial) != s0.instance
        {
            return Err(0);
        }
        for i in 1..self.steps.len() {
            let prev = &self.steps[i - 1].instance;
            let step = &self.steps[i];
            let Some(trigger) = step.trigger.as_ref() else {
                return Err(i);
            };
            if !trigger.is_trigger_for(&self.rules, prev)
                || trigger.is_satisfied_in(&self.rules, prev)
            {
                return Err(i);
            }
            let a = self.pre_instance(i);
            if !step.simplification.is_retraction_of(&a)
                || step.simplification.apply_set(&a) != step.instance
            {
                return Err(i);
            }
        }
        Ok(())
    }

    /// Fairness check on a *terminating* derivation prefix: every trigger
    /// of every `F_i`, forwarded through the trace maps, must be satisfied
    /// in the final instance. Returns the offending `(step, trigger)` if
    /// any.
    ///
    /// For non-terminating prefixes this is only a necessary condition up
    /// to the recorded horizon.
    pub fn check_fair_up_to_horizon(&self) -> Result<(), (usize, Trigger)> {
        let last = self.steps.len() - 1;
        for i in 0..self.steps.len() {
            let trace = self.trace(i, last);
            for tr in all_triggers(&self.rules, &self.steps[i].instance) {
                let fwd = tr.map(&self.rules, &trace);
                if !fwd.is_satisfied_in(&self.rules, self.last_instance()) {
                    return Err((i, tr));
                }
            }
        }
        Ok(())
    }

    /// Checks Proposition 1.(1) on the recorded prefix: every `F_i` maps
    /// homomorphically into `model` (so the natural aggregation is
    /// universal). `model` must be a model of the KB for this to be
    /// meaningful.
    pub fn all_instances_map_into(&self, model: &AtomSet) -> bool {
        self.instances()
            .all(|f| chase_homomorphism::maps_to(f, model))
    }

    /// Convenience: does the final instance satisfy every trigger (i.e. is
    /// it a model of the rules)? Together with `F ⊆`-reachability this is
    /// the termination criterion of the chase.
    pub fn final_is_model(&self, _vocab: &Vocabulary) -> bool {
        crate::trigger::is_model_of_rules(&self.rules, self.last_instance())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::Rule;
    use crate::trigger::apply_trigger;
    use chase_atoms::{Atom, PredId, Term, VarId};

    fn v(i: u32) -> Term {
        Term::Var(VarId::from_raw(i))
    }

    fn atom(pr: u32, args: &[Term]) -> Atom {
        Atom::new(PredId::from_raw(pr), args.to_vec())
    }

    fn set(atoms: &[Atom]) -> AtomSet {
        atoms.iter().cloned().collect()
    }

    /// r(X, Y) → ∃Z. r(Y, Z) with rule vars 0,1,2; facts r(10, 11).
    fn setup() -> (Vocabulary, RuleSet, AtomSet) {
        let mut vocab = Vocabulary::new();
        vocab.ensure_var(VarId::from_raw(50));
        let rules: RuleSet = [Rule::new(
            "chain",
            set(&[atom(0, &[v(0), v(1)])]),
            set(&[atom(0, &[v(1), v(2)])]),
        )
        .unwrap()]
        .into_iter()
        .collect();
        let facts = set(&[atom(0, &[v(10), v(11)])]);
        (vocab, rules, facts)
    }

    fn extend_once(vocab: &mut Vocabulary, d: &mut Derivation) {
        let rules = d.rules().clone();
        let current = d.last_instance().clone();
        let tr = crate::trigger::unsatisfied_triggers(&rules, &current)
            .into_iter()
            .next()
            .expect("an unsatisfied trigger exists");
        let app = apply_trigger(vocab, &rules, &current, &tr);
        d.push_step(tr, app.pi_safe, Substitution::new(), app.result);
    }

    #[test]
    fn monotonic_derivation_validates() {
        let (mut vocab, rules, facts) = setup();
        let mut d = Derivation::start(rules, facts, Substitution::new());
        for _ in 0..3 {
            extend_once(&mut vocab, &mut d);
        }
        assert_eq!(d.len(), 4);
        assert!(d.is_monotonic());
        assert_eq!(d.validate(), Ok(()));
        assert!(d.trace(0, 3).is_empty(), "monotonic traces are identity");
    }

    #[test]
    fn pre_instance_reconstruction() {
        let (mut vocab, rules, facts) = setup();
        let mut d = Derivation::start(rules, facts.clone(), Substitution::new());
        extend_once(&mut vocab, &mut d);
        assert_eq!(d.pre_instance(0), facts);
        // With identity simplification, A_1 = F_1.
        assert_eq!(&d.pre_instance(1), d.instance(1));
    }

    #[test]
    fn simplified_derivation_validates() {
        // Apply the chain rule then fold the new null back: σ maps the
        // fresh Z to 10, giving F_1 = {r(10,11), r(11,10)}? No — fold must
        // be a retraction of A_1 = {r(10,11), r(11,Z)}. Mapping Z ↦ 10
        // requires r(11,10) ∈ A_1 — not there. Instead fold 10 ↦ Z? Also
        // not a retraction. Use a rule where folding works:
        // r(X,Y) → ∃Z. r(Y,Z) on facts {r(10,10)} is satisfied; use facts
        // {r(10,11), r(11,11)}: trigger on (10,11) is satisfied. So use the
        // trigger on (11,11)? Also satisfied. Build the fold scenario
        // manually: start from r(10,11); apply to get r(11,Z); apply to
        // get r(Z,W); now σ folding nothing is identity. Simplest
        // non-identity retraction test: duplicate-producing datalog rule.
        let mut vocab = Vocabulary::new();
        vocab.ensure_var(VarId::from_raw(50));
        // s(X,Y) → ∃W. r(Y,W); facts {s(10,11), r(11,12), r(12,12)}.
        // A_1 = facts ∪ {r(11, Z)}; σ: Z ↦ 12 is a retraction
        // (r(11,12) present).
        let rules: RuleSet = [Rule::new(
            "mk",
            set(&[atom(1, &[v(0), v(1)])]),
            set(&[atom(0, &[v(1), v(2)])]),
        )
        .unwrap()]
        .into_iter()
        .collect();
        let facts = set(&[
            atom(1, &[v(10), v(11)]),
            atom(0, &[v(11), v(12)]),
            atom(0, &[v(12), v(12)]),
        ]);
        let mut d = Derivation::start(rules.clone(), facts.clone(), Substitution::new());
        let tr = crate::trigger::all_triggers(&rules, &facts)
            .into_iter()
            .find(|t| !t.is_satisfied_in(&rules, &facts));
        // The trigger IS satisfied (r(11,12) witnesses it) — so Definition
        // 1 forbids applying it. Check that validate() catches a violation.
        assert!(tr.is_none());
        let satisfied = crate::trigger::all_triggers(&rules, &facts)
            .into_iter()
            .next()
            .unwrap();
        let app = apply_trigger(&mut vocab, &rules, &facts, &satisfied);
        d.push_step(satisfied, app.pi_safe, Substitution::new(), app.result);
        assert_eq!(d.validate(), Err(1));
    }

    #[test]
    fn fairness_on_terminated_chase() {
        // Datalog transitivity on a 3-path terminates; afterwards every
        // trigger is satisfied.
        let mut vocab = Vocabulary::new();
        vocab.ensure_var(VarId::from_raw(50));
        let rules: RuleSet = [Rule::new(
            "trans",
            set(&[atom(0, &[v(0), v(1)]), atom(0, &[v(1), v(2)])]),
            set(&[atom(0, &[v(0), v(2)])]),
        )
        .unwrap()]
        .into_iter()
        .collect();
        let facts = set(&[atom(0, &[v(10), v(11)]), atom(0, &[v(11), v(12)])]);
        let mut d = Derivation::start(rules.clone(), facts, Substitution::new());
        loop {
            let current = d.last_instance().clone();
            let Some(tr) = crate::trigger::unsatisfied_triggers(&rules, &current)
                .into_iter()
                .next()
            else {
                break;
            };
            let app = apply_trigger(&mut vocab, &rules, &current, &tr);
            d.push_step(tr, app.pi_safe, Substitution::new(), app.result);
        }
        assert_eq!(d.validate(), Ok(()));
        assert!(d.check_fair_up_to_horizon().is_ok());
        assert!(d.final_is_model(&vocab));
        assert!(d.all_instances_map_into(d.last_instance()));
    }
}
