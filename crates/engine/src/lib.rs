//! # chase-engine
//!
//! Existential rules and the chase, implementing Sections 2, 3 and 8 of
//! *Bounded Treewidth and the Infinite Core Chase* (PODS 2023):
//!
//! * [`Rule`] / [`RuleSet`] — existential rules `B → H` with frontier and
//!   existential variables;
//! * [`Trigger`] — a rule plus a homomorphism of its body into an
//!   instance; trigger application `α(I, tr)` and satisfaction;
//! * [`Derivation`] — the paper's Definition 1: a sequence of triggers,
//!   *simplifications* (retractions) and instances, with the trace maps
//!   `σ_i^j` of Definition 2 and the fairness notion of Definition 3;
//! * [`chase::run_chase`] — a budgeted, fair, deterministic chase runner
//!   for the oblivious, semi-oblivious, restricted and core variants;
//! * [`robust`] — the robust renaming (Definition 14), robust sequence
//!   (Definition 15) and robust aggregation (Definition 16), which turn a
//!   non-monotonic derivation into a finitely universal model while
//!   preserving treewidth bounds (Propositions 10–12);
//! * [`aggregation`] — the natural aggregation `D*` of Section 3;
//! * [`boundedness`] — treewidth profiles of derivations, feeding the
//!   uniform/recurring boundedness analyses of Section 5.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregation;
pub mod boundedness;
pub mod chase;
pub mod control;
mod derivation;
pub mod dot;
pub mod prng;
pub mod robust;
mod rule;
pub mod skolem;
mod trigger;

pub use chase::{
    run_chase, run_chase_controlled, run_chase_observed, ChaseConfig, ChaseOutcome, ChaseResult,
    ChaseStats, ChaseVariant, CoreMaintenance, MatchStrategy, RecordLevel, SchedulerKind,
    SuspendReason,
};
pub use control::{CancelToken, ChaseEvent, FaultPlan, FaultSite};
pub use derivation::{Derivation, DerivationStep};
pub use robust::{RobustSequence, VarTrace};
pub use rule::{Rule, RuleError, RuleId, RuleSet};
pub use trigger::{
    all_triggers, all_triggers_counted, apply_trigger, is_model_of_rules, triggers_using_delta,
    triggers_using_delta_counted, unsatisfied_triggers, MatchTally, Trigger, TriggerApplication,
};
