//! Skolem null management for the semi-oblivious (skolem) chase.
//!
//! The semi-oblivious chase is equivalent to chasing with *skolemized*
//! rules: each existential variable `z` of rule `R` becomes a function
//! term `f_{R,z}(x̄)` over the frontier. This module interns those
//! function terms as reusable nulls, making the skolem chase
//! **deterministic and restart-safe**: re-applying a trigger with the
//! same frontier image yields the *same* null, so independently computed
//! chases of the same KB produce literally identical instances.

use std::collections::HashMap;

use chase_atoms::{Substitution, Term, VarId, Vocabulary};

use crate::rule::{RuleId, RuleSet};
use crate::trigger::Trigger;

/// Interning table for skolem nulls: `(rule, existential var, frontier
/// image) → null`.
#[derive(Clone, Debug, Default)]
pub struct SkolemTable {
    map: HashMap<(RuleId, VarId, Vec<Term>), VarId>,
}

impl SkolemTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct skolem nulls minted so far.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The skolem null `f_{R,z}(frontier image)`, minted on first use.
    pub fn null_for(
        &mut self,
        vocab: &mut Vocabulary,
        rules: &RuleSet,
        rule: RuleId,
        z: VarId,
        pi: &Substitution,
    ) -> VarId {
        let frontier_image: Vec<Term> = rules
            .get(rule)
            .frontier_vars()
            .iter()
            .map(|&x| pi.apply_term(Term::Var(x)))
            .collect();
        *self
            .map
            .entry((rule, z, frontier_image))
            .or_insert_with(|| vocab.fresh_var())
    }

    /// The safe substitution of a trigger under skolem semantics: `π` on
    /// the frontier plus interned skolem nulls for the existentials.
    pub fn pi_safe(
        &mut self,
        vocab: &mut Vocabulary,
        rules: &RuleSet,
        tr: &Trigger,
    ) -> Substitution {
        let rule = rules.get(tr.rule);
        let mut pi_safe = tr.pi.restrict(rule.frontier_vars());
        let existentials: Vec<VarId> = rule.existential_vars().iter().copied().collect();
        for z in existentials {
            let null = self.null_for(vocab, rules, tr.rule, z, &tr.pi);
            pi_safe.bind(z, Term::Var(null));
        }
        pi_safe
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::Rule;
    use chase_atoms::{Atom, AtomSet, PredId};

    fn v(i: u32) -> Term {
        Term::Var(VarId::from_raw(i))
    }

    fn vid(i: u32) -> VarId {
        VarId::from_raw(i)
    }

    fn atom(pr: u32, args: &[Term]) -> Atom {
        Atom::new(PredId::from_raw(pr), args.to_vec())
    }

    fn set(atoms: &[Atom]) -> AtomSet {
        atoms.iter().cloned().collect()
    }

    /// r(X, Y) → ∃Z. s(Y, Z): frontier {Y}, existential {Z}.
    fn rules() -> RuleSet {
        [Rule::new(
            "mk",
            set(&[atom(0, &[v(0), v(1)])]),
            set(&[atom(1, &[v(1), v(2)])]),
        )
        .unwrap()]
        .into_iter()
        .collect()
    }

    #[test]
    fn same_frontier_image_reuses_null() {
        let rules = rules();
        let mut vocab = Vocabulary::new();
        vocab.ensure_var(vid(50));
        let mut table = SkolemTable::new();
        // Two triggers with the same Y image but different X images.
        let t1 = Trigger::new(
            &rules,
            0,
            &Substitution::from_pairs([(vid(0), v(10)), (vid(1), v(12))]),
        );
        let t2 = Trigger::new(
            &rules,
            0,
            &Substitution::from_pairs([(vid(0), v(11)), (vid(1), v(12))]),
        );
        let s1 = table.pi_safe(&mut vocab, &rules, &t1);
        let s2 = table.pi_safe(&mut vocab, &rules, &t2);
        assert_eq!(s1.get(vid(2)), s2.get(vid(2)), "skolem nulls coincide");
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn different_frontier_images_get_distinct_nulls() {
        let rules = rules();
        let mut vocab = Vocabulary::new();
        vocab.ensure_var(vid(50));
        let mut table = SkolemTable::new();
        let t1 = Trigger::new(
            &rules,
            0,
            &Substitution::from_pairs([(vid(0), v(10)), (vid(1), v(12))]),
        );
        let t2 = Trigger::new(
            &rules,
            0,
            &Substitution::from_pairs([(vid(0), v(10)), (vid(1), v(13))]),
        );
        let s1 = table.pi_safe(&mut vocab, &rules, &t1);
        let s2 = table.pi_safe(&mut vocab, &rules, &t2);
        assert_ne!(s1.get(vid(2)), s2.get(vid(2)));
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn deterministic_across_tables() {
        // Two independent (table, vocab) pairs mint identical ids when
        // fed the same call sequence — restart safety.
        let rules = rules();
        let mk = || {
            let mut vocab = Vocabulary::new();
            vocab.ensure_var(vid(50));
            let mut table = SkolemTable::new();
            let t = Trigger::new(
                &rules,
                0,
                &Substitution::from_pairs([(vid(0), v(10)), (vid(1), v(12))]),
            );
            table.pi_safe(&mut vocab, &rules, &t).get(vid(2))
        };
        assert_eq!(mk(), mk());
    }
}
