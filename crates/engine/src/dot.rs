//! Graphviz (DOT) export for instances and derivations — the pictures of
//! the paper's Figures 2–4 as machine-generated diagrams.
//!
//! Binary atoms become labeled edges, unary atoms become node labels, and
//! higher-arity atoms become hyperedge factor nodes. Derivations render
//! as one cluster per chase element.

use std::fmt::Write as _;

use chase_atoms::{AtomSet, DisplayWith, Term, Vocabulary};

use crate::derivation::Derivation;

fn node_id(prefix: &str, t: Term) -> String {
    match t {
        Term::Var(v) => format!("{prefix}v{}", v.raw()),
        Term::Const(c) => format!("{prefix}c{}", c.raw()),
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn write_instance_body(out: &mut String, prefix: &str, vocab: &Vocabulary, instance: &AtomSet) {
    // Node declarations with accumulated unary labels.
    for t in instance.terms() {
        let mut label = format!("{}", t.with(vocab));
        let marks: Vec<String> = instance
            .with_term(t)
            .filter(|a| a.arity() == 1)
            .map(|a| vocab.pred_name(a.pred()).to_string())
            .collect();
        if !marks.is_empty() {
            let _ = write!(label, "\\n[{}]", marks.join(","));
        }
        let _ = writeln!(
            out,
            "    {} [label=\"{}\"];",
            node_id(prefix, t),
            escape(&label)
        );
    }
    let mut factor = 0usize;
    for atom in instance.iter() {
        match atom.arity() {
            0 | 1 => {}
            2 => {
                let _ = writeln!(
                    out,
                    "    {} -> {} [label=\"{}\"];",
                    node_id(prefix, atom.args()[0]),
                    node_id(prefix, atom.args()[1]),
                    escape(vocab.pred_name(atom.pred()))
                );
            }
            _ => {
                let f = format!("{prefix}f{factor}");
                factor += 1;
                let _ = writeln!(
                    out,
                    "    {f} [shape=box,label=\"{}\"];",
                    escape(vocab.pred_name(atom.pred()))
                );
                for (i, &t) in atom.args().iter().enumerate() {
                    let _ = writeln!(
                        out,
                        "    {f} -> {} [label=\"{i}\",style=dashed];",
                        node_id(prefix, t)
                    );
                }
            }
        }
    }
}

/// Renders one instance as a DOT digraph.
pub fn instance_dot(vocab: &Vocabulary, instance: &AtomSet, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(title));
    let _ = writeln!(out, "    rankdir=BT;");
    let _ = writeln!(out, "    label=\"{}\";", escape(title));
    write_instance_body(&mut out, "", vocab, instance);
    let _ = writeln!(out, "}}");
    out
}

/// Renders a derivation as a DOT digraph with one cluster per element
/// `F_i`, annotated with the applied rule and whether the simplification
/// was proper.
pub fn derivation_dot(vocab: &Vocabulary, d: &Derivation, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(title));
    let _ = writeln!(out, "    rankdir=LR;");
    let _ = writeln!(out, "    label=\"{}\";", escape(title));
    for (i, step) in d.steps().iter().enumerate() {
        let rule_note = match &step.trigger {
            Some(tr) => format!("F{i} ← {}", d.rules().get(tr.rule).name()),
            None => format!("F{i} (initial)"),
        };
        let simp_note = if step.simplification.is_empty() {
            String::new()
        } else {
            " / fold".to_string()
        };
        let _ = writeln!(out, "  subgraph cluster_{i} {{");
        let _ = writeln!(out, "    label=\"{}{}\";", escape(&rule_note), simp_note);
        write_instance_body(&mut out, &format!("s{i}_"), vocab, &step.instance);
        let _ = writeln!(out, "  }}");
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase::{run_chase, ChaseConfig, ChaseVariant};
    use crate::rule::{Rule, RuleSet};
    use chase_atoms::Atom;

    #[test]
    fn instance_dot_renders_nodes_edges_and_marks() {
        let mut vocab = Vocabulary::new();
        let f = vocab.pred("f", 1);
        let h = vocab.pred("h", 2);
        let x = Term::Var(vocab.named_var("X"));
        let y = Term::Var(vocab.named_var("Y"));
        let inst: AtomSet = [Atom::new(f, vec![x]), Atom::new(h, vec![x, y])]
            .into_iter()
            .collect();
        let dot = instance_dot(&vocab, &inst, "test");
        assert!(dot.contains("digraph"));
        assert!(dot.contains("label=\"h\""));
        assert!(dot.contains("[f]"), "unary mark rendered: {dot}");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn ternary_atoms_become_factor_nodes() {
        let mut vocab = Vocabulary::new();
        let t = vocab.pred("t", 3);
        let x = Term::Var(vocab.named_var("X"));
        let inst: AtomSet = [Atom::new(t, vec![x, x, x])].into_iter().collect();
        let dot = instance_dot(&vocab, &inst, "t3");
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("style=dashed"));
    }

    #[test]
    fn derivation_dot_has_one_cluster_per_step() {
        let mut vocab = Vocabulary::new();
        let r = vocab.pred("r", 2);
        let x = Term::Var(vocab.named_var("X"));
        let y = Term::Var(vocab.named_var("Y"));
        let z = Term::Var(vocab.named_var("Z"));
        let rules: RuleSet = [Rule::new(
            "R",
            [Atom::new(r, vec![x, y])].into_iter().collect(),
            [Atom::new(r, vec![y, z])].into_iter().collect(),
        )
        .unwrap()]
        .into_iter()
        .collect();
        let a = Term::Var(vocab.fresh_var());
        let b = Term::Var(vocab.fresh_var());
        let facts: AtomSet = [Atom::new(r, vec![a, b])].into_iter().collect();
        let cfg = ChaseConfig::variant(ChaseVariant::Restricted).with_max_applications(2);
        let res = run_chase(&mut vocab, &facts, &rules, &cfg);
        let d = res.derivation.unwrap();
        let dot = derivation_dot(&vocab, &d, "chain");
        assert_eq!(dot.matches("subgraph cluster_").count(), d.len());
        assert!(dot.contains("← R"));
    }
}
