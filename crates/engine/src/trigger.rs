//! Triggers and trigger application (`α(I, tr)`).

use std::collections::{BTreeSet, HashSet};
use std::ops::ControlFlow;

use chase_atoms::{AtomSet, Substitution, Term, VarId, Vocabulary};
use chase_homomorphism::{find_homomorphism_extending, for_each_homomorphism, MatchConfig};

use crate::rule::{RuleId, RuleSet};

/// Running totals for the engine's match phase: how many homomorphism
/// searches trigger discovery and satisfaction checking ran, and how many
/// candidate trials (backtracking nodes) they explored. Trial counts are
/// deterministic for a given instance and [`MatchConfig`], which makes
/// them the machine-independent counters the match-phase bench gate
/// compares.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct MatchTally {
    /// Homomorphism searches started.
    pub searches: usize,
    /// Candidate trials explored across those searches.
    pub trials: usize,
}

impl MatchTally {
    /// Adds a search's outcome to the tally.
    pub fn absorb(&mut self, outcome: chase_homomorphism::SearchOutcome) {
        self.searches += 1;
        self.trials += outcome.nodes;
    }
}

/// A trigger `tr = (R, π)`: a rule together with a homomorphism of its
/// body into an instance.
///
/// `π` is stored restricted to the rule's universal variables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trigger {
    /// The rule being triggered.
    pub rule: RuleId,
    /// The body homomorphism, restricted to the rule's universal
    /// variables.
    pub pi: Substitution,
}

impl Trigger {
    /// Creates a trigger, restricting `pi` to the rule's universal
    /// variables.
    pub fn new(rules: &RuleSet, rule: RuleId, pi: &Substitution) -> Self {
        Trigger {
            rule,
            pi: pi.restrict(rules.get(rule).universal_vars()),
        }
    }

    /// Is this a trigger *for* `instance`, i.e. does `π` map the rule body
    /// into it?
    pub fn is_trigger_for(&self, rules: &RuleSet, instance: &AtomSet) -> bool {
        self.pi
            .is_homomorphism(rules.get(self.rule).body(), instance)
    }

    /// Is the trigger *satisfied* in `instance`: can `π` be extended to a
    /// homomorphism from `B ∪ H` to `instance`?
    pub fn is_satisfied_in(&self, rules: &RuleSet, instance: &AtomSet) -> bool {
        let rule = rules.get(self.rule);
        if !self.is_trigger_for(rules, instance) {
            return false;
        }
        let head_vars: BTreeSet<VarId> = rule.head().vars();
        let seed = self.pi.restrict(&head_vars);
        find_homomorphism_extending(rule.head(), instance, &seed).is_some()
    }

    /// [`Trigger::is_satisfied_in`] under an explicit [`MatchConfig`]
    /// (the engine's match-strategy knob), recording the search in
    /// `tally`.
    pub fn is_satisfied_in_counted(
        &self,
        rules: &RuleSet,
        instance: &AtomSet,
        mcfg: &MatchConfig,
        tally: &mut MatchTally,
    ) -> bool {
        let rule = rules.get(self.rule);
        if !self.is_trigger_for(rules, instance) {
            return false;
        }
        // Seed with π unrestricted: bindings for universal variables
        // outside the head are inert (they never conflict with the
        // head's frontier or existential variables), and only existence
        // matters here — so the per-check `head_vars` set and restricted
        // substitution of [`Trigger::is_satisfied_in`] are dead weight.
        let mut found = false;
        let outcome = for_each_homomorphism(rule.head(), instance, &self.pi, mcfg, |_| {
            found = true;
            ControlFlow::Break(())
        });
        tally.absorb(outcome);
        found
    }

    /// Applies a substitution to the trigger: `σ(tr) = (R, σ ∘ π)`,
    /// restricted back to the rule's universal variables.
    pub fn map(&self, rules: &RuleSet, sigma: &Substitution) -> Trigger {
        Trigger {
            rule: self.rule,
            pi: self
                .pi
                .then(sigma)
                .restrict(rules.get(self.rule).universal_vars()),
        }
    }

    /// A canonical key identifying the trigger up to its frontier image —
    /// the deduplication notion of the *semi-oblivious* (skolem) chase.
    pub fn frontier_key(&self, rules: &RuleSet) -> (RuleId, Vec<(VarId, Term)>) {
        let rule = rules.get(self.rule);
        let key = rule
            .frontier_vars()
            .iter()
            .map(|&x| (x, self.pi.apply_term(Term::Var(x))))
            .collect();
        (self.rule, key)
    }

    /// A canonical key identifying the trigger up to its full universal
    /// image — the deduplication notion of the *oblivious* chase.
    pub fn universal_key(&self, rules: &RuleSet) -> (RuleId, Vec<(VarId, Term)>) {
        let rule = rules.get(self.rule);
        let key = rule
            .universal_vars()
            .iter()
            .map(|&x| (x, self.pi.apply_term(Term::Var(x))))
            .collect();
        (self.rule, key)
    }
}

/// The result of a trigger application `α(I, tr) = I ∪ π_safe(H)`.
#[derive(Clone, Debug)]
pub struct TriggerApplication {
    /// The produced instance `α(I, tr)`.
    pub result: AtomSet,
    /// The safe substitution: `π` on frontier variables plus a fresh null
    /// for each existential variable of the rule.
    pub pi_safe: Substitution,
    /// The fresh nulls minted for this application, in the order of the
    /// rule's existential variables.
    pub fresh: Vec<VarId>,
}

/// Applies trigger `tr` to `instance`, minting fresh nulls from `vocab`.
pub fn apply_trigger(
    vocab: &mut Vocabulary,
    rules: &RuleSet,
    instance: &AtomSet,
    tr: &Trigger,
) -> TriggerApplication {
    let rule = rules.get(tr.rule);
    debug_assert!(tr.is_trigger_for(rules, instance), "applying a non-trigger");
    let mut pi_safe = tr.pi.restrict(rule.frontier_vars());
    let mut fresh = Vec::new();
    for &z in rule.existential_vars() {
        let null = vocab.fresh_var();
        pi_safe.bind(z, Term::Var(null));
        fresh.push(null);
    }
    let mut result = instance.clone();
    for atom in rule.head().iter() {
        result.insert(pi_safe.apply_atom(atom));
    }
    TriggerApplication {
        result,
        pi_safe,
        fresh,
    }
}

/// Enumerates all triggers of `rules` for `instance`, in deterministic
/// order (rule-major, then matcher order).
pub fn all_triggers(rules: &RuleSet, instance: &AtomSet) -> Vec<Trigger> {
    all_triggers_counted(
        rules,
        instance,
        &MatchConfig::default(),
        &mut MatchTally::default(),
    )
}

/// [`all_triggers`] under an explicit [`MatchConfig`], recording every
/// body search in `tally`.
pub fn all_triggers_counted(
    rules: &RuleSet,
    instance: &AtomSet,
    mcfg: &MatchConfig,
    tally: &mut MatchTally,
) -> Vec<Trigger> {
    let mut out = Vec::new();
    for (id, rule) in rules.iter() {
        let outcome =
            for_each_homomorphism(rule.body(), instance, &Substitution::new(), mcfg, |pi| {
                out.push(Trigger {
                    rule: id,
                    pi: pi.restrict(rule.universal_vars()),
                });
                ControlFlow::Continue(())
            });
        tally.absorb(outcome);
    }
    // Matcher order depends on dynamic candidate counts; sort for a stable
    // cross-run order.
    out.sort_by(|a, b| {
        a.rule.cmp(&b.rule).then_with(|| {
            let ka: Vec<_> = a.pi.iter().collect();
            let kb: Vec<_> = b.pi.iter().collect();
            ka.cmp(&kb)
        })
    });
    out.dedup();
    out
}

/// Enumerates the triggers for `instance` whose body image uses at least
/// one atom from `delta` — the *semi-naive* discovery step: in a
/// monotonic chase every trigger is discovered in the round after its
/// last body atom appears, and (since satisfaction is preserved under
/// extension) a trigger handled once never needs to be revisited.
///
/// The result is deduplicated and sorted like [`all_triggers`].
pub fn triggers_using_delta(
    rules: &RuleSet,
    instance: &AtomSet,
    delta: &[chase_atoms::Atom],
) -> Vec<Trigger> {
    triggers_using_delta_counted(
        rules,
        instance,
        delta,
        &MatchConfig::default(),
        &mut MatchTally::default(),
    )
}

/// [`triggers_using_delta`] under an explicit [`MatchConfig`], recording
/// every seeded body search in `tally`.
pub fn triggers_using_delta_counted(
    rules: &RuleSet,
    instance: &AtomSet,
    delta: &[chase_atoms::Atom],
    mcfg: &MatchConfig,
    tally: &mut MatchTally,
) -> Vec<Trigger> {
    let mut out = Vec::new();
    // A rule whose body repeats a predicate seeds the same homomorphism
    // once per (body-atom, delta-atom) pair; dedup on the trigger's
    // universal key *during* enumeration so each distinct trigger is
    // materialized once, instead of piling duplicates into `out` and
    // discarding them post-hoc in sort+dedup.
    let mut seen: HashSet<(RuleId, Vec<(VarId, Term)>)> = HashSet::new();
    for (id, rule) in rules.iter() {
        for body_atom in rule.body().iter() {
            for new_atom in delta {
                if new_atom.pred() != body_atom.pred() || new_atom.arity() != body_atom.arity() {
                    continue;
                }
                // Seed: unify this body atom against the new atom.
                let mut seed = Substitution::new();
                let mut ok = true;
                for (&bt, &nt) in body_atom.args().iter().zip(new_atom.args()) {
                    match bt {
                        chase_atoms::Term::Const(_) => {
                            if bt != nt {
                                ok = false;
                                break;
                            }
                        }
                        chase_atoms::Term::Var(v) => match seed.get(v) {
                            Some(prev) if prev != nt => {
                                ok = false;
                                break;
                            }
                            Some(_) => {}
                            None => {
                                seed.bind(v, nt);
                            }
                        },
                    }
                }
                if !ok {
                    continue;
                }
                let outcome = for_each_homomorphism(rule.body(), instance, &seed, mcfg, |pi| {
                    let tr = Trigger {
                        rule: id,
                        pi: pi.restrict(rule.universal_vars()),
                    };
                    if seen.insert(tr.universal_key(rules)) {
                        out.push(tr);
                    }
                    ControlFlow::Continue(())
                });
                tally.absorb(outcome);
            }
        }
    }
    // `seen` already guarantees uniqueness; sort for a stable cross-run
    // order like `all_triggers`.
    out.sort_by(|a, b| {
        a.rule.cmp(&b.rule).then_with(|| {
            let ka: Vec<_> = a.pi.iter().collect();
            let kb: Vec<_> = b.pi.iter().collect();
            ka.cmp(&kb)
        })
    });
    out
}

/// Enumerates the *unsatisfied* triggers for `instance` — the active
/// triggers of the restricted chase. `instance` is a model of the rules
/// iff this is empty.
pub fn unsatisfied_triggers(rules: &RuleSet, instance: &AtomSet) -> Vec<Trigger> {
    all_triggers(rules, instance)
        .into_iter()
        .filter(|t| !t.is_satisfied_in(rules, instance))
        .collect()
}

/// Is `instance` a model of every rule (every trigger satisfied)?
pub fn is_model_of_rules(rules: &RuleSet, instance: &AtomSet) -> bool {
    let mut ok = true;
    'outer: for (id, rule) in rules.iter() {
        let mut triggers = Vec::new();
        for_each_homomorphism(
            rule.body(),
            instance,
            &Substitution::new(),
            &MatchConfig::default(),
            |pi| {
                triggers.push(Trigger {
                    rule: id,
                    pi: pi.restrict(rule.universal_vars()),
                });
                ControlFlow::Continue(())
            },
        );
        for t in triggers {
            if !t.is_satisfied_in(rules, instance) {
                ok = false;
                break 'outer;
            }
        }
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::Rule;
    use chase_atoms::{Atom, PredId};

    fn v(i: u32) -> Term {
        Term::Var(VarId::from_raw(i))
    }

    fn atom(pr: u32, args: &[Term]) -> Atom {
        Atom::new(PredId::from_raw(pr), args.to_vec())
    }

    fn set(atoms: &[Atom]) -> AtomSet {
        atoms.iter().cloned().collect()
    }

    /// r(X, Y) → ∃Z. r(Y, Z) over variables 0, 1, 2.
    fn chain_rule() -> RuleSet {
        [Rule::new(
            "chain",
            set(&[atom(0, &[v(0), v(1)])]),
            set(&[atom(0, &[v(1), v(2)])]),
        )
        .unwrap()]
        .into_iter()
        .collect()
    }

    fn vocab_with_vars(n: u32) -> Vocabulary {
        let mut vocab = Vocabulary::new();
        vocab.ensure_var(VarId::from_raw(n));
        vocab
    }

    #[test]
    fn trigger_enumeration_and_application() {
        let rules = chain_rule();
        // instance: r(10, 11)
        let inst = set(&[atom(0, &[v(10), v(11)])]);
        let triggers = all_triggers(&rules, &inst);
        assert_eq!(triggers.len(), 1);
        let tr = &triggers[0];
        assert!(tr.is_trigger_for(&rules, &inst));
        assert!(!tr.is_satisfied_in(&rules, &inst));

        let mut vocab = vocab_with_vars(100);
        let app = apply_trigger(&mut vocab, &rules, &inst, tr);
        assert_eq!(app.result.len(), 2);
        assert_eq!(app.fresh.len(), 1);
        // Now the trigger is satisfied.
        assert!(tr.is_satisfied_in(&rules, &app.result));
    }

    #[test]
    fn satisfied_trigger_detected() {
        let rules = chain_rule();
        // r(10, 11), r(11, 12): the trigger on r(10, 11) is satisfied.
        let inst = set(&[atom(0, &[v(10), v(11)]), atom(0, &[v(11), v(12)])]);
        let triggers = all_triggers(&rules, &inst);
        assert_eq!(triggers.len(), 2);
        let unsat = unsatisfied_triggers(&rules, &inst);
        assert_eq!(unsat.len(), 1);
        assert_eq!(unsat[0].pi.apply_term(v(0)), v(11));
    }

    #[test]
    fn loop_makes_model() {
        let rules = chain_rule();
        // r(10, 10) satisfies everything.
        let inst = set(&[atom(0, &[v(10), v(10)])]);
        assert!(unsatisfied_triggers(&rules, &inst).is_empty());
        assert!(is_model_of_rules(&rules, &inst));
    }

    #[test]
    fn trigger_map_forwards_through_retraction() {
        let rules = chain_rule();
        let inst = set(&[atom(0, &[v(10), v(11)])]);
        let tr = &all_triggers(&rules, &inst)[0];
        // Retraction folding 11 onto 10 in some later instance.
        let sigma = Substitution::from_pairs([(VarId::from_raw(11), v(10))]);
        let mapped = tr.map(&rules, &sigma);
        assert_eq!(mapped.pi.apply_term(v(0)), v(10));
        assert_eq!(mapped.pi.apply_term(v(1)), v(10));
    }

    #[test]
    fn keys_distinguish_variants() {
        // Rule with a non-frontier universal variable:
        // r(X, Y) → s(X) ; triggers differing only in Y share the frontier
        // key but not the universal key.
        let rules: RuleSet = [Rule::new(
            "proj",
            set(&[atom(0, &[v(0), v(1)])]),
            set(&[atom(1, &[v(0)])]),
        )
        .unwrap()]
        .into_iter()
        .collect();
        let inst = set(&[atom(0, &[v(10), v(11)]), atom(0, &[v(10), v(12)])]);
        let triggers = all_triggers(&rules, &inst);
        assert_eq!(triggers.len(), 2);
        assert_eq!(
            triggers[0].frontier_key(&rules),
            triggers[1].frontier_key(&rules)
        );
        assert_ne!(
            triggers[0].universal_key(&rules),
            triggers[1].universal_key(&rules)
        );
    }

    #[test]
    fn delta_discovery_dedups_repeated_body_predicates() {
        // r(X, Y), r(Y, Z) → s(X, Z): both body atoms share predicate r,
        // so every delta atom seeds the same homomorphism once per
        // occurrence — the dedup must collapse them during enumeration.
        let rules: RuleSet = [Rule::new(
            "two-hop",
            set(&[atom(0, &[v(0), v(1)]), atom(0, &[v(1), v(2)])]),
            set(&[atom(1, &[v(0), v(2)])]),
        )
        .unwrap()]
        .into_iter()
        .collect();
        let inst = set(&[atom(0, &[v(10), v(11)]), atom(0, &[v(11), v(12)])]);
        let delta: Vec<Atom> = inst.iter().cloned().collect();
        let from_delta = triggers_using_delta(&rules, &inst, &delta);
        assert_eq!(from_delta.len(), 1, "one distinct trigger");
        assert_eq!(from_delta, all_triggers(&rules, &inst));
    }

    #[test]
    fn fresh_nulls_are_globally_fresh() {
        let rules = chain_rule();
        let inst = set(&[atom(0, &[v(10), v(11)])]);
        let tr = all_triggers(&rules, &inst)[0].clone();
        let mut vocab = vocab_with_vars(100);
        let app1 = apply_trigger(&mut vocab, &rules, &inst, &tr);
        let app2 = apply_trigger(&mut vocab, &rules, &app1.result, &tr);
        assert_ne!(app1.fresh, app2.fresh);
    }
}
