//! Existential rules `B → H` and rule sets.

use std::collections::BTreeSet;
use std::fmt;

use chase_atoms::{AtomSet, DisplayWith, VarId, Vocabulary};

/// Index of a rule within a [`RuleSet`].
pub type RuleId = usize;

/// Errors raised by [`Rule::new`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RuleError {
    /// The paper requires rule bodies to be nonempty finite atomsets.
    EmptyBody,
    /// The paper requires rule heads to be nonempty finite atomsets.
    EmptyHead,
}

impl fmt::Display for RuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleError::EmptyBody => write!(f, "rule body must be nonempty"),
            RuleError::EmptyHead => write!(f, "rule head must be nonempty"),
        }
    }
}

impl std::error::Error for RuleError {}

/// An existential rule `∀X∀Y. B[X,Y] → ∃Z. H[X,Z]`.
///
/// * **universal** variables: all variables of the body;
/// * **frontier** variables: shared between body and head;
/// * **existential** variables: head-only.
#[derive(Clone, PartialEq, Eq)]
pub struct Rule {
    name: String,
    body: AtomSet,
    head: AtomSet,
    universal: BTreeSet<VarId>,
    frontier: BTreeSet<VarId>,
    existential: BTreeSet<VarId>,
}

impl Rule {
    /// Creates a rule, computing its variable partition.
    pub fn new(name: impl Into<String>, body: AtomSet, head: AtomSet) -> Result<Self, RuleError> {
        if body.is_empty() {
            return Err(RuleError::EmptyBody);
        }
        if head.is_empty() {
            return Err(RuleError::EmptyHead);
        }
        let universal = body.vars();
        let head_vars = head.vars();
        let frontier: BTreeSet<VarId> = universal.intersection(&head_vars).copied().collect();
        let existential: BTreeSet<VarId> = head_vars.difference(&universal).copied().collect();
        Ok(Rule {
            name: name.into(),
            body,
            head,
            universal,
            frontier,
            existential,
        })
    }

    /// The rule's display name (e.g. `R1h`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The body `B`.
    pub fn body(&self) -> &AtomSet {
        &self.body
    }

    /// The head `H`.
    pub fn head(&self) -> &AtomSet {
        &self.head
    }

    /// All body variables (universally quantified).
    pub fn universal_vars(&self) -> &BTreeSet<VarId> {
        &self.universal
    }

    /// Variables shared between body and head.
    pub fn frontier_vars(&self) -> &BTreeSet<VarId> {
        &self.frontier
    }

    /// Head-only (existentially quantified) variables.
    pub fn existential_vars(&self) -> &BTreeSet<VarId> {
        &self.existential
    }

    /// Is this a datalog rule (no existential variables)?
    pub fn is_datalog(&self) -> bool {
        self.existential.is_empty()
    }
}

impl fmt::Debug for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {:?} -> {:?}", self.name, self.body, self.head)
    }
}

impl DisplayWith for Rule {
    fn fmt_with(&self, vocab: &Vocabulary, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut body: Vec<_> = self.body.sorted_atoms();
        body.sort();
        for (i, a) in body.iter().enumerate() {
            if i > 0 {
                f.write_str(" ∧ ")?;
            }
            a.fmt_with(vocab, f)?;
        }
        f.write_str(" → ")?;
        if !self.existential.is_empty() {
            f.write_str("∃")?;
            for (i, &z) in self.existential.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                z.fmt_with(vocab, f)?;
            }
            f.write_str(". ")?;
        }
        let mut head: Vec<_> = self.head.sorted_atoms();
        head.sort();
        for (i, a) in head.iter().enumerate() {
            if i > 0 {
                f.write_str(" ∧ ")?;
            }
            a.fmt_with(vocab, f)?;
        }
        Ok(())
    }
}

/// An ordered collection of rules (`Σ`).
#[derive(Clone, Default, Debug)]
pub struct RuleSet {
    rules: Vec<Rule>,
}

impl RuleSet {
    /// Creates an empty rule set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a rule, returning its id.
    pub fn push(&mut self, rule: Rule) -> RuleId {
        self.rules.push(rule);
        self.rules.len() - 1
    }

    /// The rule behind an id.
    ///
    /// # Panics
    /// Panics on out-of-range ids.
    pub fn get(&self, id: RuleId) -> &Rule {
        &self.rules[id]
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Is the rule set empty?
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Iterates over `(id, rule)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RuleId, &Rule)> {
        self.rules.iter().enumerate()
    }

    /// Looks a rule up by name.
    pub fn by_name(&self, name: &str) -> Option<(RuleId, &Rule)> {
        self.iter().find(|(_, r)| r.name() == name)
    }
}

impl FromIterator<Rule> for RuleSet {
    fn from_iter<I: IntoIterator<Item = Rule>>(iter: I) -> Self {
        RuleSet {
            rules: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_atoms::{Atom, PredId, Term};

    fn v(i: u32) -> Term {
        Term::Var(VarId::from_raw(i))
    }

    fn vid(i: u32) -> VarId {
        VarId::from_raw(i)
    }

    fn atom(pr: u32, args: &[Term]) -> Atom {
        Atom::new(PredId::from_raw(pr), args.to_vec())
    }

    fn set(atoms: &[Atom]) -> AtomSet {
        atoms.iter().cloned().collect()
    }

    #[test]
    fn variable_partition() {
        // r(X, Y) → ∃Z. s(Y, Z)
        let rule = Rule::new(
            "r1",
            set(&[atom(0, &[v(0), v(1)])]),
            set(&[atom(1, &[v(1), v(2)])]),
        )
        .unwrap();
        assert_eq!(
            rule.universal_vars().iter().copied().collect::<Vec<_>>(),
            vec![vid(0), vid(1)]
        );
        assert_eq!(
            rule.frontier_vars().iter().copied().collect::<Vec<_>>(),
            vec![vid(1)]
        );
        assert_eq!(
            rule.existential_vars().iter().copied().collect::<Vec<_>>(),
            vec![vid(2)]
        );
        assert!(!rule.is_datalog());
    }

    #[test]
    fn datalog_rule_has_no_existentials() {
        let rule = Rule::new(
            "t",
            set(&[atom(0, &[v(0), v(1)]), atom(0, &[v(1), v(2)])]),
            set(&[atom(0, &[v(0), v(2)])]),
        )
        .unwrap();
        assert!(rule.is_datalog());
        assert_eq!(rule.frontier_vars().len(), 2);
    }

    #[test]
    fn empty_body_or_head_rejected() {
        let some = set(&[atom(0, &[v(0)])]);
        assert_eq!(
            Rule::new("x", AtomSet::new(), some.clone()).unwrap_err(),
            RuleError::EmptyBody
        );
        assert_eq!(
            Rule::new("x", some, AtomSet::new()).unwrap_err(),
            RuleError::EmptyHead
        );
    }

    #[test]
    fn ruleset_lookup() {
        let r1 = Rule::new("a", set(&[atom(0, &[v(0)])]), set(&[atom(1, &[v(0)])])).unwrap();
        let r2 = Rule::new("b", set(&[atom(1, &[v(0)])]), set(&[atom(0, &[v(0)])])).unwrap();
        let rs: RuleSet = [r1, r2].into_iter().collect();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.by_name("b").unwrap().0, 1);
        assert!(rs.by_name("zzz").is_none());
    }
}
