//! The budgeted, fair chase runner for the oblivious, semi-oblivious,
//! restricted and core chase variants.
//!
//! ## Fairness
//!
//! The runner works in **rounds**: at the start of a round it snapshots
//! the currently active triggers; during the round it applies them one by
//! one, *forwarding* each queued trigger through the simplifications
//! performed meanwhile (the trace maps `σ_i^j` of Definition 2) and
//! re-checking activity right before application. Triggers discovered
//! during a round wait for the next round. Every trigger that stays active
//! is therefore applied within a bounded number of rounds, which is
//! exactly Definition 3 fairness on the produced derivation.
//!
//! ## Variants
//!
//! * **Oblivious** — applies every trigger once (deduplicated by rule +
//!   full body image), regardless of satisfaction.
//! * **Semi-oblivious** (skolem) — deduplicates by rule + frontier image.
//! * **Restricted** (standard) — applies only triggers not satisfied in
//!   the current instance; simplifications are the identity.
//! * **Core** — restricted, plus a retraction to the core after every
//!   `core_interval` applications (Definition 1's simplifications).

use std::collections::HashSet;
use std::time::{Duration, Instant};

use chase_atoms::{AtomSet, Substitution, Term, Vocabulary};
use chase_homomorphism::{
    core_of_budgeted, find_retraction_eliminating_frozen_budgeted, incremental_core, MatchConfig,
    MatchStats, SearchBudget,
};

use crate::control::{CancelToken, ChaseEvent, FaultPlan};
use crate::derivation::Derivation;
use crate::prng::SplitMix64;
use crate::rule::RuleSet;
use crate::skolem::SkolemTable;
use crate::trigger::{
    all_triggers_counted, apply_trigger, triggers_using_delta_counted, MatchTally, Trigger,
};

/// Which chase variant to run.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ChaseVariant {
    /// Apply every trigger exactly once, never checking satisfaction.
    Oblivious,
    /// Apply one trigger per (rule, frontier image) class.
    SemiOblivious,
    /// Apply only unsatisfied triggers; no simplification.
    Restricted,
    /// Restricted + fold only the freshly minted nulls of each
    /// application (the *frugal* chase of Konstantinidis & Ambite, the
    /// paper's [15] — strictly between restricted and core in redundancy
    /// removal).
    Frugal,
    /// Restricted + retraction to the core every `core_interval`
    /// applications.
    Core,
}

/// How the runner orders the triggers within a round. All options preserve
/// fairness (the round structure does); they differ in *which* fair
/// sequence gets built — Propositions 8.3/8.4 quantify over all of them.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Deterministic order: rule-major, then by body image.
    Deterministic,
    /// Seeded random shuffle of each round's snapshot.
    Random(u64),
    /// Datalog (existential-free) rules first, then deterministic — the
    /// priority scheme of the paper's Proposition 6 proof.
    DatalogFirst,
    /// Datalog triggers first, then existential triggers ascending by
    /// how many existentials the rule mints. A refinement of
    /// [`SchedulerKind::DatalogFirst`] for guarded loops: saturating
    /// cheap facts before each null-minting application gives the
    /// restricted chase's satisfaction check the best chance to block
    /// the application outright.
    ExistentialLast,
    /// Triggers ascending by the number of nulls in their frontier
    /// image (ties broken deterministically). Null-propagating triggers
    /// run last each round, so ground-fact consequences land first and
    /// satisfaction checks prune deeper null chains — the
    /// restricted-chase selection strategy for width-bounded loops.
    NullAverse,
}

/// How the core variant recomputes the core after an application.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum CoreMaintenance {
    /// Re-run the full fold loop over every variable of the instance
    /// (the pre-incremental behaviour; kept for A/B comparison).
    FullRecompute,
    /// Probe only the *dirty region* — fresh nulls plus variables of
    /// atoms unifiable onto the atoms added since the last core step,
    /// expanded transitively as folds land — with candidates probed in
    /// parallel. Sound because the pre-application instance is a core.
    #[default]
    Incremental,
}

/// How the engine's match phase (trigger discovery + satisfaction
/// checking) enumerates candidate atoms.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum MatchStrategy {
    /// Exact candidate sets through the positional
    /// `(pred, arity, position, term)` postings with bitset pruning.
    #[default]
    Indexed,
    /// The pre-index scan-and-filter enumeration. Same results, more
    /// candidate trials; kept as the benchmark and differential-test
    /// baseline.
    NaiveScan,
}

impl MatchStrategy {
    /// The matcher configuration implementing this strategy.
    pub fn match_config(self) -> MatchConfig {
        MatchConfig {
            naive_scan: self == MatchStrategy::NaiveScan,
            ..MatchConfig::default()
        }
    }
}

/// Whether to keep every intermediate instance.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RecordLevel {
    /// Record the full derivation (required for robust aggregation and
    /// treewidth profiles).
    Full,
    /// Keep only the final instance (cheapest; for benchmarks).
    FinalOnly,
}

/// Chase configuration.
#[derive(Clone, Debug)]
pub struct ChaseConfig {
    /// The chase variant.
    pub variant: ChaseVariant,
    /// Trigger ordering within a round.
    pub scheduler: SchedulerKind,
    /// Recording level.
    pub record: RecordLevel,
    /// Budget: maximum number of rule applications.
    pub max_applications: usize,
    /// Budget: stop once an instance exceeds this many atoms.
    pub max_atoms: usize,
    /// Budget: stop once this much wall-clock time has elapsed (checked
    /// between trigger applications, so a single expensive core step may
    /// overshoot). `None` disables the clock.
    pub max_wall: Option<Duration>,
    /// Core variant only: retract to the core every this many
    /// applications (≥ 1).
    pub core_interval: usize,
    /// Core variant only: how the per-step core is recomputed.
    pub core_maintenance: CoreMaintenance,
    /// Wall-clock time already consumed by earlier slices of the same
    /// derivation. Deducted from `max_wall` so a resumed job continues
    /// under the *remaining* budget instead of a fresh full one. Process
    /// state, never serialized into checkpoints.
    pub consumed_wall: Duration,
    /// Deterministic fault-injection plan for crash testing; `None` (the
    /// default) injects nothing. Process state, never serialized.
    pub fault: Option<FaultPlan>,
    /// Soft memory ceiling, in abstract memory units (instance atoms +
    /// nulls minted this slice + pending trigger-queue entries). Crossing
    /// it once degrades the run: an immediate core retraction pass is
    /// forced (core variant), the retraction search budget is shrunk and
    /// a [`ChaseEvent::Degraded`] event is emitted. `None` disables.
    pub mem_soft: Option<usize>,
    /// Hard memory ceiling, in the same units. Crossing it suspends the
    /// run cleanly with [`ChaseOutcome::Suspended`]
    /// ([`SuspendReason::MemoryCeiling`]) — resumable via the ordinary
    /// checkpoint path, instead of aborting or `OOMing`. `None` disables.
    pub mem_hard: Option<usize>,
    /// Optional stratified rule schedule: an ordered partition of rule
    /// ids. Each stratum is chased to saturation before the next one is
    /// enabled; rules missing from every stratum never fire. Sound when
    /// the partition follows the rule-dependency condensation
    /// (producers before consumers), because later strata cannot feed
    /// earlier ones. Serialized into checkpoints so resumed jobs keep
    /// their plan.
    pub strata: Option<Vec<Vec<usize>>>,
    /// Externally supplied [`SearchBudget`], merged into the budget that
    /// every retraction search runs under (cancel flags appended, the
    /// earlier deadline wins, node limits combine by minimum) and polled
    /// between trigger applications — an expired or cancelled external
    /// budget stops the run with [`ChaseOutcome::Cancelled`]. Process
    /// state, never serialized.
    pub search_budget: SearchBudget,
    /// How the match phase enumerates candidates. [`MatchStrategy::NaiveScan`]
    /// reproduces the pre-index behaviour for A/B benchmarking; results
    /// are identical either way.
    pub match_strategy: MatchStrategy,
    /// Max concurrent core-maintenance probe threads. `None` (default)
    /// uses `available_parallelism` capped at 8; `Some(1)` makes the core
    /// variant's fold probing sequential and hence fully deterministic —
    /// what the byte-identical-derivation regression tests pin.
    pub probe_threads: Option<usize>,
}

impl Default for ChaseConfig {
    fn default() -> Self {
        ChaseConfig {
            variant: ChaseVariant::Restricted,
            scheduler: SchedulerKind::Deterministic,
            record: RecordLevel::Full,
            max_applications: 10_000,
            max_atoms: 1_000_000,
            max_wall: None,
            core_interval: 1,
            core_maintenance: CoreMaintenance::default(),
            consumed_wall: Duration::ZERO,
            fault: None,
            mem_soft: None,
            mem_hard: None,
            strata: None,
            search_budget: SearchBudget::unlimited(),
            match_strategy: MatchStrategy::default(),
            probe_threads: None,
        }
    }
}

impl ChaseConfig {
    /// A config for the given variant with default budgets.
    pub fn variant(variant: ChaseVariant) -> Self {
        ChaseConfig {
            variant,
            ..ChaseConfig::default()
        }
    }

    /// Sets the application budget.
    pub fn with_max_applications(mut self, n: usize) -> Self {
        self.max_applications = n;
        self
    }

    /// Sets the atom budget.
    pub fn with_max_atoms(mut self, n: usize) -> Self {
        self.max_atoms = n;
        self
    }

    /// Sets the wall-clock budget.
    pub fn with_max_wall(mut self, d: Duration) -> Self {
        self.max_wall = Some(d);
        self
    }

    /// Sets the scheduler.
    pub fn with_scheduler(mut self, s: SchedulerKind) -> Self {
        self.scheduler = s;
        self
    }

    /// Sets the recording level.
    pub fn with_record(mut self, r: RecordLevel) -> Self {
        self.record = r;
        self
    }

    /// Sets the core retraction interval.
    pub fn with_core_interval(mut self, k: usize) -> Self {
        assert!(k >= 1);
        self.core_interval = k;
        self
    }

    /// Sets the core maintenance strategy.
    pub fn with_core_maintenance(mut self, m: CoreMaintenance) -> Self {
        self.core_maintenance = m;
        self
    }

    /// Sets the wall-clock time already consumed by earlier slices.
    pub fn with_consumed_wall(mut self, d: Duration) -> Self {
        self.consumed_wall = d;
        self
    }

    /// Arms a fault-injection plan.
    pub fn with_fault(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Sets the soft memory ceiling (abstract units; degrade, don't stop).
    pub fn with_mem_soft(mut self, units: usize) -> Self {
        self.mem_soft = Some(units);
        self
    }

    /// Sets the hard memory ceiling (abstract units; suspend cleanly).
    pub fn with_mem_hard(mut self, units: usize) -> Self {
        self.mem_hard = Some(units);
        self
    }

    /// Sets a stratified rule schedule (an ordered partition of rule
    /// ids; each stratum saturates before the next starts).
    pub fn with_strata(mut self, strata: Vec<Vec<usize>>) -> Self {
        self.strata = Some(strata);
        self
    }

    /// Sets the external search budget (merged into retraction searches
    /// and polled between applications).
    pub fn with_search_budget(mut self, budget: SearchBudget) -> Self {
        self.search_budget = budget;
        self
    }

    /// Sets the match-phase candidate enumeration strategy.
    pub fn with_match_strategy(mut self, s: MatchStrategy) -> Self {
        self.match_strategy = s;
        self
    }

    /// Pins the number of core-maintenance probe threads (`1` makes core
    /// fold probing deterministic).
    pub fn with_probe_threads(mut self, n: usize) -> Self {
        assert!(n >= 1);
        self.probe_threads = Some(n);
        self
    }
}

/// Why the chase stopped.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ChaseOutcome {
    /// A fixpoint was reached: no active trigger remains, the final
    /// instance is a (finite universal, for restricted/core) model.
    Terminated,
    /// The application budget was exhausted.
    ApplicationBudgetExhausted,
    /// The atom budget was exhausted.
    AtomBudgetExhausted,
    /// The wall-clock budget was exhausted.
    WallBudgetExhausted,
    /// The observer callback requested a stop.
    Stopped,
    /// A [`CancelToken`] requested a stop.
    Cancelled,
    /// The run was suspended cleanly before a resource exhaustion could
    /// turn into a crash; resumable like any budget stop.
    Suspended(SuspendReason),
}

/// Why a run was suspended ([`ChaseOutcome::Suspended`]).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SuspendReason {
    /// The hard memory ceiling ([`ChaseConfig::mem_hard`]) was crossed,
    /// or a [`crate::FaultSite::MemoryPressure`] site fired.
    MemoryCeiling,
}

impl ChaseOutcome {
    /// Did the chase reach a fixpoint?
    pub fn terminated(self) -> bool {
        self == ChaseOutcome::Terminated
    }

    /// Can the run meaningfully continue from its final instance (i.e.
    /// it stopped for a budget, a cancel or an observer, not because a
    /// fixpoint was reached)?
    pub fn resumable(self) -> bool {
        !self.terminated()
    }
}

/// Counters describing a chase run.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaseStats {
    /// Number of rule applications performed.
    pub applications: usize,
    /// Number of fairness rounds executed.
    pub rounds: usize,
    /// Number of non-identity simplifications (core retractions).
    pub retractions: usize,
    /// Largest instance (in atoms) ever produced, pre-simplification.
    pub peak_atoms: usize,
    /// Core/frugal phases executed (including no-op ones).
    pub core_steps: usize,
    /// Matcher search nodes explored across all core/frugal phases.
    pub match_nodes: usize,
    /// Fold candidates probed for eliminability across all phases.
    pub fold_candidates: usize,
    /// Phases cut short by the wall-clock/cancel budget (their result is
    /// a sound retract but possibly not the core).
    pub core_truncations: usize,
    /// Wall-clock microseconds spent inside core/frugal phases.
    pub core_time_us: u64,
    /// Wall-clock microseconds this run has consumed, updated before
    /// every step event and at the end of the run. Across resumed slices
    /// the service accumulates it, so a checkpoint knows how much of the
    /// `max_wall` budget the derivation has already spent.
    pub wall_us: u64,
    /// Fresh nulls minted by trigger applications in this slice (the
    /// skolem variant interns nulls, so its reused ones do not count).
    pub nulls_minted: usize,
    /// Largest round snapshot of pending triggers ever taken.
    pub peak_trigger_queue: usize,
    /// Peak abstract memory units (atoms + nulls minted + pending queue
    /// entries) observed after any application — what the soft/hard
    /// memory ceilings of [`ChaseConfig`] are enforced against.
    pub peak_mem_units: usize,
    /// Wall-clock microseconds spent in the match phase (trigger
    /// discovery + satisfaction checking). Nondeterministic, like
    /// [`ChaseStats::wall_us`].
    pub match_time_us: u64,
    /// Homomorphism searches run by the match phase.
    pub match_searches: usize,
    /// Candidate trials explored by match-phase searches. Deterministic
    /// for a given KB and [`MatchStrategy`] — the counter the bench gate
    /// compares across machines.
    pub match_trials: usize,
    /// Largest number of live positional-index postings the instance ever
    /// carried (a structural gauge of index memory).
    pub peak_index_postings: usize,
}

/// The result of a chase run.
#[derive(Clone, Debug)]
pub struct ChaseResult {
    /// The recorded derivation ([`RecordLevel::Full`] only).
    pub derivation: Option<Derivation>,
    /// The final instance `F_k`.
    pub final_instance: AtomSet,
    /// Why the run stopped.
    pub outcome: ChaseOutcome,
    /// Run counters.
    pub stats: ChaseStats,
}

fn order_snapshot(
    snapshot: &mut [Trigger],
    rules: &RuleSet,
    cfg: &ChaseConfig,
    rng: &mut SplitMix64,
) {
    match cfg.scheduler {
        SchedulerKind::Deterministic => {}
        SchedulerKind::Random(_) => rng.shuffle(snapshot),
        SchedulerKind::DatalogFirst => {
            snapshot.sort_by_key(|t| !rules.get(t.rule).is_datalog());
        }
        SchedulerKind::ExistentialLast => {
            snapshot.sort_by_key(|t| {
                let rule = rules.get(t.rule);
                (!rule.is_datalog(), rule.existential_vars().len())
            });
        }
        SchedulerKind::NullAverse => {
            // Instance terms that are variables are labeled nulls, so
            // the key counts nulls in the trigger's frontier image.
            snapshot.sort_by_key(|t| {
                let rule = rules.get(t.rule);
                rule.frontier_vars()
                    .iter()
                    .filter(|&&x| matches!(t.pi.apply_term(Term::Var(x)), Term::Var(_)))
                    .count()
            });
        }
    }
}

/// Runs the chase from `(facts, rules)` under `cfg`, minting fresh nulls
/// from `vocab`.
pub fn run_chase(
    vocab: &mut Vocabulary,
    facts: &AtomSet,
    rules: &RuleSet,
    cfg: &ChaseConfig,
) -> ChaseResult {
    run_chase_observed(vocab, facts, rules, cfg, |_, _| {
        std::ops::ControlFlow::Continue(())
    })
}

/// Like [`run_chase`], but invokes `observer` after every rule
/// application with the freshly produced instance `F_i` and the running
/// stats. Returning `ControlFlow::Break` stops the chase with
/// [`ChaseOutcome::Stopped`] — the mechanism behind the Theorem 1 twin
/// semi-decision procedure in `chase-core`.
pub fn run_chase_observed(
    vocab: &mut Vocabulary,
    facts: &AtomSet,
    rules: &RuleSet,
    cfg: &ChaseConfig,
    mut observer: impl FnMut(&AtomSet, &ChaseStats) -> std::ops::ControlFlow<()>,
) -> ChaseResult {
    run_chase_controlled(vocab, facts, rules, cfg, None, |event| match event {
        ChaseEvent::StepApplied {
            instance, stats, ..
        } => observer(instance, stats),
        _ => std::ops::ControlFlow::Continue(()),
    })
}

/// The fully controlled runner behind [`run_chase`] and
/// [`run_chase_observed`]: adds cooperative cancellation (polled between
/// trigger applications), the wall-clock budget of
/// [`ChaseConfig::max_wall`], and a structured [`ChaseEvent`] stream in
/// place of the post-hoc-only stats. This is the engine entry point of
/// the `treechase-service` job runner.
pub fn run_chase_controlled(
    vocab: &mut Vocabulary,
    facts: &AtomSet,
    rules: &RuleSet,
    cfg: &ChaseConfig,
    cancel: Option<&CancelToken>,
    mut observer: impl FnMut(ChaseEvent<'_>) -> std::ops::ControlFlow<()>,
) -> ChaseResult {
    // Once the soft memory ceiling is crossed, retraction searches run
    // under this node limit: degraded mode trades core quality (a
    // truncated phase is a sound non-core retract) for bounded memory
    // and latency.
    const DEGRADED_NODE_LIMIT: usize = 50_000;

    // Make sure the supply is ahead of every variable already mentioned.
    for v in facts.vars() {
        vocab.ensure_var(v);
    }
    for (_, rule) in rules.iter() {
        for v in rule.body().vars().union(&rule.head().vars()) {
            vocab.ensure_var(*v);
        }
    }

    let mut rng = SplitMix64::new(match cfg.scheduler {
        SchedulerKind::Random(seed) => seed,
        _ => 0,
    });
    let started = Instant::now();
    // What earlier slices of this derivation already spent comes off the
    // wall budget: a resumed job continues the old clock, it does not get
    // a fresh one.
    let effective_wall = cfg
        .max_wall
        .map(|limit| limit.saturating_sub(cfg.consumed_wall));
    let wall_exhausted = |started: Instant| match effective_wall {
        Some(limit) => started.elapsed() >= limit,
        None => false,
    };
    let cancelled =
        || cancel.is_some_and(CancelToken::is_cancelled) || cfg.search_budget.interrupted();

    // The budget threaded into every retraction search: the caller's
    // external budget, plus a deadline from `max_wall` and the cancel
    // flag from the token. This is what keeps a single expensive core
    // phase from overshooting the wall budget or ignoring a cancel — the
    // matcher polls it inside its backtracking loop.
    let mut budget = cfg.search_budget.clone();
    if let Some(limit) = effective_wall {
        let wall_deadline = started + limit;
        budget.deadline = Some(
            budget
                .deadline
                .map_or(wall_deadline, |d| d.min(wall_deadline)),
        );
    }
    if let Some(token) = cancel {
        budget = budget.with_cancel(token.flag());
    }
    let probe_threads = cfg
        .probe_threads
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get().min(8)));
    let mcfg = cfg.match_strategy.match_config();

    let mut degraded = false;

    let mut stats = ChaseStats {
        peak_atoms: facts.len(),
        ..ChaseStats::default()
    };
    let sigma0 = match cfg.variant {
        ChaseVariant::Core => {
            let phase = Instant::now();
            let (res, ms) = core_of_budgeted(facts, &budget);
            stats.core_steps += 1;
            stats.match_nodes += ms.nodes;
            stats.fold_candidates += ms.candidates;
            stats.core_truncations += ms.truncated as usize;
            stats.core_time_us += phase.elapsed().as_micros() as u64;
            res.retraction
        }
        _ => Substitution::new(),
    };
    let mut derivation = Derivation::start(rules.clone(), facts.clone(), sigma0);

    // Dedup memory for the oblivious variants (monotonic, so keys stay
    // valid across the whole run).
    let mut applied_keys: HashSet<(usize, Vec<(chase_atoms::VarId, chase_atoms::Term)>)> =
        HashSet::new();

    // Semi-naive discovery for the monotonic variants: a trigger only
    // needs to be considered in the round after its last body atom
    // appeared, because in a monotonic chase satisfaction is preserved
    // under extension. The non-monotonic variants (frugal, core) re-scan,
    // since retractions can invalidate earlier satisfaction.
    let monotonic = matches!(
        cfg.variant,
        ChaseVariant::Oblivious | ChaseVariant::SemiOblivious | ChaseVariant::Restricted
    );
    let mut delta: Vec<chase_atoms::Atom> = facts.iter().cloned().collect();

    // Stratified schedule: only rules of the active stratum may fire;
    // when the active stratum saturates, the next one is enabled and the
    // semi-naive delta is reset to the full instance so the newly
    // enabled rules see every atom.
    let strata_sets: Option<Vec<HashSet<usize>>> = cfg
        .strata
        .as_ref()
        .map(|parts| parts.iter().map(|s| s.iter().copied().collect()).collect());
    let mut stratum = 0usize;

    let mut skolem = SkolemTable::new();
    let mut since_core = 0usize;
    // Dirty region accumulated since the last core step: the head images
    // (over-approximating the truly-new atoms is harmless — it only
    // widens the candidate seed) and fresh nulls of each application.
    // Valid because between core steps the instance only grows and no
    // renaming happens (sigma is the identity off core steps).
    let mut added_since_core: Vec<chase_atoms::Atom> = Vec::new();
    let mut fresh_since_core: Vec<chase_atoms::VarId> = Vec::new();
    let outcome = 'outer: loop {
        if cancelled() {
            break ChaseOutcome::Cancelled;
        }
        if wall_exhausted(started) {
            break ChaseOutcome::WallBudgetExhausted;
        }
        let current = derivation.last_instance().clone();
        stats.peak_index_postings = stats.peak_index_postings.max(current.index_postings());
        let match_phase = Instant::now();
        let mut tally = MatchTally::default();
        let discovered = if monotonic {
            let d = triggers_using_delta_counted(rules, &current, &delta, &mcfg, &mut tally);
            delta.clear();
            d
        } else {
            all_triggers_counted(rules, &current, &mcfg, &mut tally)
        };
        let mut snapshot: Vec<Trigger> = discovered
            .into_iter()
            .filter(|t| {
                strata_sets
                    .as_ref()
                    .is_none_or(|sets| sets.get(stratum).is_some_and(|s| s.contains(&t.rule)))
            })
            .filter(|t| match cfg.variant {
                ChaseVariant::Oblivious => !applied_keys.contains(&t.universal_key(rules)),
                ChaseVariant::SemiOblivious => !applied_keys.contains(&t.frontier_key(rules)),
                ChaseVariant::Restricted | ChaseVariant::Frugal | ChaseVariant::Core => {
                    !t.is_satisfied_in_counted(rules, &current, &mcfg, &mut tally)
                }
            })
            .collect();
        stats.match_time_us += match_phase.elapsed().as_micros() as u64;
        stats.match_searches += tally.searches;
        stats.match_trials += tally.trials;
        if snapshot.is_empty() {
            if let Some(sets) = &strata_sets {
                if stratum + 1 < sets.len() {
                    stratum += 1;
                    // Re-prime discovery for the next stratum: its rules
                    // have never matched, so every atom is "new" to them.
                    delta = current.iter().cloned().collect();
                    continue;
                }
            }
            break ChaseOutcome::Terminated;
        }
        order_snapshot(&mut snapshot, rules, cfg, &mut rng);
        stats.rounds += 1;
        stats.peak_trigger_queue = stats.peak_trigger_queue.max(snapshot.len());
        if observer(ChaseEvent::RoundStarted {
            round: stats.rounds,
            pending: snapshot.len(),
        })
        .is_break()
        {
            break 'outer ChaseOutcome::Stopped;
        }

        // Simplifications performed during this round, composed.
        let mut forward = Substitution::new();
        let snapshot_len = snapshot.len();
        for (pos, tr) in snapshot.into_iter().enumerate() {
            if cancelled() {
                break 'outer ChaseOutcome::Cancelled;
            }
            if wall_exhausted(started) {
                break 'outer ChaseOutcome::WallBudgetExhausted;
            }
            if stats.applications >= cfg.max_applications {
                break 'outer ChaseOutcome::ApplicationBudgetExhausted;
            }
            let tr = tr.map(rules, &forward);
            let f = derivation.last_instance();
            let match_phase = Instant::now();
            let mut tally = MatchTally::default();
            let active = match cfg.variant {
                ChaseVariant::Oblivious => !applied_keys.contains(&tr.universal_key(rules)),
                ChaseVariant::SemiOblivious => !applied_keys.contains(&tr.frontier_key(rules)),
                ChaseVariant::Restricted | ChaseVariant::Frugal | ChaseVariant::Core => {
                    tr.is_trigger_for(rules, f)
                        && !tr.is_satisfied_in_counted(rules, f, &mcfg, &mut tally)
                }
            };
            stats.match_time_us += match_phase.elapsed().as_micros() as u64;
            stats.match_searches += tally.searches;
            stats.match_trials += tally.trials;
            if !active {
                continue;
            }
            let before_len = f.len();
            let app = if cfg.variant == ChaseVariant::SemiOblivious {
                // Skolem semantics: nulls are interned per (rule,
                // frontier image), making the run deterministic and
                // restart-safe.
                let pi_safe = skolem.pi_safe(vocab, rules, &tr);
                let mut result = f.clone();
                for head_atom in rules.get(tr.rule).head().iter() {
                    result.insert(pi_safe.apply_atom(head_atom));
                }
                crate::trigger::TriggerApplication {
                    result,
                    pi_safe,
                    fresh: Vec::new(),
                }
            } else {
                apply_trigger(vocab, rules, f, &tr)
            };
            stats.applications += 1;
            since_core += 1;
            if let Some(n) = cfg.fault.as_ref().and_then(FaultPlan::on_application) {
                panic!("injected fault: crash at application #{n}");
            }
            if let Some(ms) = cfg.fault.as_ref().and_then(FaultPlan::on_slow) {
                std::thread::sleep(Duration::from_millis(ms));
            }
            stats.nulls_minted += app.fresh.len();
            stats.peak_atoms = stats.peak_atoms.max(app.result.len());
            stats.peak_index_postings = stats.peak_index_postings.max(app.result.index_postings());

            // Abstract memory accounting: instance atoms at their
            // pre-retraction peak, plus the nulls this slice minted, plus
            // the triggers still queued in this round. Deterministic, so
            // ceiling behaviour is reproducible in tests without real
            // memory pressure.
            let mem_units = app.result.len() + stats.nulls_minted + (snapshot_len - pos - 1);
            stats.peak_mem_units = stats.peak_mem_units.max(mem_units);
            let mem_fault = cfg
                .fault
                .as_ref()
                .and_then(FaultPlan::on_memory_pressure)
                .is_some();
            let mem_hard_hit = mem_fault || cfg.mem_hard.is_some_and(|h| mem_units > h);
            if !mem_hard_hit && !degraded && cfg.mem_soft.is_some_and(|s| mem_units > s) {
                degraded = true;
                // Degrade: force the core retraction pass to run on this
                // very application (core variant; the others have no
                // retraction to force) and shrink the search budget so
                // later phases stay bounded.
                since_core = cfg.core_interval;
                budget = budget.tighten_node_limit(DEGRADED_NODE_LIMIT);
                if observer(ChaseEvent::Degraded {
                    mem_units,
                    soft_limit: cfg.mem_soft.unwrap_or(0),
                    stats: &stats,
                })
                .is_break()
                {
                    break 'outer ChaseOutcome::Stopped;
                }
            }
            if cfg.variant == ChaseVariant::Core
                && cfg.core_maintenance == CoreMaintenance::Incremental
            {
                for head_atom in rules.get(tr.rule).head().iter() {
                    added_since_core.push(app.pi_safe.apply_atom(head_atom));
                }
                fresh_since_core.extend(app.fresh.iter().copied());
            }
            let produced_len = app.result.len();
            if monotonic && app.result.len() > before_len {
                let prev = derivation.last_instance();
                delta.extend(app.result.iter().filter(|a| !prev.contains(a)).cloned());
            }
            match cfg.variant {
                ChaseVariant::Oblivious => {
                    applied_keys.insert(tr.universal_key(rules));
                }
                ChaseVariant::SemiOblivious => {
                    applied_keys.insert(tr.frontier_key(rules));
                }
                _ => {}
            }
            let mut phase_stats = MatchStats::default();
            let (sigma, next) = match cfg.variant {
                ChaseVariant::Core if since_core >= cfg.core_interval => {
                    since_core = 0;
                    if let Some(n) = cfg.fault.as_ref().and_then(FaultPlan::on_core_phase) {
                        panic!("injected fault: crash in core phase #{n}");
                    }
                    let phase = Instant::now();
                    let (sigma, next, ms) = match cfg.core_maintenance {
                        CoreMaintenance::FullRecompute => {
                            let (res, ms) = core_of_budgeted(&app.result, &budget);
                            (res.retraction, res.core, ms)
                        }
                        CoreMaintenance::Incremental => {
                            let res = incremental_core(
                                &app.result,
                                &added_since_core,
                                &fresh_since_core,
                                &budget,
                                probe_threads,
                            );
                            (res.retraction, res.core, res.stats)
                        }
                    };
                    // A truncated phase leaves a non-core retract, but the
                    // budget that cut it (deadline/cancel) is monotone, so
                    // the run stops at the next between-steps poll — the
                    // "pre-instance is a core" invariant is never consumed
                    // in a broken state.
                    added_since_core.clear();
                    fresh_since_core.clear();
                    stats.core_steps += 1;
                    stats.match_nodes += ms.nodes;
                    stats.fold_candidates += ms.candidates;
                    stats.core_truncations += ms.truncated as usize;
                    stats.core_time_us += phase.elapsed().as_micros() as u64;
                    if !sigma.is_empty() {
                        stats.retractions += 1;
                    }
                    phase_stats = ms;
                    (sigma, next)
                }
                ChaseVariant::Frugal => {
                    // Fold only the freshly minted nulls of this
                    // application; everything older is frozen.
                    let phase = Instant::now();
                    let mut current = app.result.clone();
                    let mut sigma = Substitution::new();
                    let mut ms = MatchStats::default();
                    for &z in &app.fresh {
                        if ms.truncated || budget.interrupted() {
                            ms.truncated = true;
                            break;
                        }
                        if !current.mentions(chase_atoms::Term::Var(z)) {
                            continue;
                        }
                        let frozen: Vec<chase_atoms::VarId> = current
                            .vars()
                            .into_iter()
                            .filter(|v| !app.fresh.contains(v))
                            .collect();
                        let probe = find_retraction_eliminating_frozen_budgeted(
                            &current, z, frozen, &budget,
                        );
                        ms.absorb(probe.outcome);
                        if let Some(r) = probe.retraction {
                            current.apply_in_place(&r);
                            sigma = sigma.then(&r);
                        }
                    }
                    stats.core_steps += 1;
                    stats.match_nodes += ms.nodes;
                    stats.fold_candidates += ms.candidates;
                    stats.core_truncations += ms.truncated as usize;
                    stats.core_time_us += phase.elapsed().as_micros() as u64;
                    if !sigma.is_empty() {
                        stats.retractions += 1;
                    }
                    phase_stats = ms;
                    (sigma, current)
                }
                _ => (Substitution::new(), app.result),
            };
            forward = forward.then(&sigma);
            let retracted = next.len() < produced_len;
            let too_big = next.len() > cfg.max_atoms;
            derivation.push_step(tr, app.pi_safe, sigma, next);
            if too_big {
                break 'outer ChaseOutcome::AtomBudgetExhausted;
            }
            if mem_hard_hit {
                // The application is recorded (it happened), then the run
                // suspends cleanly: the caller checkpoints the instance
                // exactly as for a budget stop.
                break 'outer ChaseOutcome::Suspended(SuspendReason::MemoryCeiling);
            }
            if retracted
                && observer(ChaseEvent::CoreRetracted {
                    before: produced_len,
                    after: derivation.last_instance().len(),
                    match_stats: phase_stats,
                    stats: &stats,
                })
                .is_break()
            {
                break 'outer ChaseOutcome::Stopped;
            }
            stats.wall_us = started.elapsed().as_micros() as u64;
            if observer(ChaseEvent::StepApplied {
                instance: derivation.last_instance(),
                vocab: &*vocab,
                stats: &stats,
            })
            .is_break()
            {
                break 'outer ChaseOutcome::Stopped;
            }
        }
    };

    stats.wall_us = started.elapsed().as_micros() as u64;
    let final_instance = derivation.last_instance().clone();
    ChaseResult {
        derivation: match cfg.record {
            RecordLevel::Full => Some(derivation),
            RecordLevel::FinalOnly => None,
        },
        final_instance,
        outcome,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::Rule;
    use crate::trigger::is_model_of_rules;
    use chase_atoms::{Atom, PredId, Term, VarId};
    use chase_homomorphism::{is_core, maps_to};

    fn v(i: u32) -> Term {
        Term::Var(VarId::from_raw(i))
    }

    fn atom(pr: u32, args: &[Term]) -> Atom {
        Atom::new(PredId::from_raw(pr), args.to_vec())
    }

    fn set(atoms: &[Atom]) -> AtomSet {
        atoms.iter().cloned().collect()
    }

    fn vocab() -> Vocabulary {
        let mut v = Vocabulary::new();
        v.ensure_var(VarId::from_raw(99));
        v
    }

    /// Transitivity (datalog, terminating).
    fn transitivity() -> RuleSet {
        [Rule::new(
            "trans",
            set(&[atom(0, &[v(0), v(1)]), atom(0, &[v(1), v(2)])]),
            set(&[atom(0, &[v(0), v(2)])]),
        )
        .unwrap()]
        .into_iter()
        .collect()
    }

    /// r(X, Y) → ∃Z. r(Y, Z) (non-terminating for restricted on a path).
    fn chain() -> RuleSet {
        [Rule::new(
            "chain",
            set(&[atom(0, &[v(0), v(1)])]),
            set(&[atom(0, &[v(1), v(2)])]),
        )
        .unwrap()]
        .into_iter()
        .collect()
    }

    #[test]
    fn datalog_chase_terminates_with_transitive_closure() {
        let rules = transitivity();
        let facts = set(&[
            atom(0, &[v(10), v(11)]),
            atom(0, &[v(11), v(12)]),
            atom(0, &[v(12), v(13)]),
        ]);
        let mut vocab = vocab();
        let res = run_chase(&mut vocab, &facts, &rules, &ChaseConfig::default());
        assert!(res.outcome.terminated());
        // Closure of a 4-chain: 3 + 2 + 1 = 6 atoms.
        assert_eq!(res.final_instance.len(), 6);
        assert!(is_model_of_rules(&rules, &res.final_instance));
        let d = res.derivation.unwrap();
        assert_eq!(d.validate(), Ok(()));
        assert!(d.check_fair_up_to_horizon().is_ok());
    }

    #[test]
    fn restricted_chase_hits_budget_on_chain() {
        let rules = chain();
        let facts = set(&[atom(0, &[v(10), v(11)])]);
        let mut vocab = vocab();
        let cfg = ChaseConfig::default().with_max_applications(5);
        let res = run_chase(&mut vocab, &facts, &rules, &cfg);
        assert_eq!(res.outcome, ChaseOutcome::ApplicationBudgetExhausted);
        assert_eq!(res.stats.applications, 5);
        assert_eq!(res.final_instance.len(), 6);
        let d = res.derivation.unwrap();
        assert!(d.is_monotonic());
        assert_eq!(d.validate(), Ok(()));
    }

    #[test]
    fn restricted_chase_terminates_on_loop() {
        // Facts contain a loop ⇒ the chain trigger is satisfied.
        let rules = chain();
        let facts = set(&[atom(0, &[v(10), v(10)])]);
        let mut vocab = vocab();
        let res = run_chase(&mut vocab, &facts, &rules, &ChaseConfig::default());
        assert!(res.outcome.terminated());
        assert_eq!(res.stats.applications, 0);
    }

    #[test]
    fn core_chase_folds_redundancy() {
        // Rule r(X,Y) → ∃Z. r(X,Z), plus facts {r(a-var, b-var), loop}:
        // facts: r(10,11), r(10,10). Trigger on (10,11) is satisfied by
        // r(10,10)? Satisfaction needs an extension of π = {X↦10, Y↦11}
        // mapping Z somewhere with r(10, Z): yes, Z↦11 or 10. So chase
        // terminates immediately. Core chase's σ_0 folds 11 into 10?
        // r(10,11): folding 11↦10 needs r(10,10) ∈ F — yes! So F_0 is the
        // loop alone.
        let rules: RuleSet = [Rule::new(
            "mk",
            set(&[atom(0, &[v(0), v(1)])]),
            set(&[atom(0, &[v(0), v(2)])]),
        )
        .unwrap()]
        .into_iter()
        .collect();
        let facts = set(&[atom(0, &[v(10), v(11)]), atom(0, &[v(10), v(10)])]);
        let mut vocab = vocab();
        let res = run_chase(
            &mut vocab,
            &facts,
            &rules,
            &ChaseConfig::variant(ChaseVariant::Core),
        );
        assert!(res.outcome.terminated());
        assert_eq!(res.final_instance, set(&[atom(0, &[v(10), v(10)])]));
        assert!(is_core(&res.final_instance));
    }

    #[test]
    fn core_chase_result_is_core_after_termination() {
        let rules = transitivity();
        let facts = set(&[
            atom(0, &[v(10), v(11)]),
            atom(0, &[v(11), v(10)]),
            atom(0, &[v(11), v(12)]),
        ]);
        let mut vocab = vocab();
        let res = run_chase(
            &mut vocab,
            &facts,
            &rules,
            &ChaseConfig::variant(ChaseVariant::Core),
        );
        assert!(res.outcome.terminated());
        assert!(is_core(&res.final_instance));
        assert!(is_model_of_rules(&rules, &res.final_instance));
        let d = res.derivation.unwrap();
        assert_eq!(d.validate(), Ok(()));
    }

    #[test]
    fn oblivious_applies_satisfied_triggers() {
        // chain rule on a loop: restricted stops at once, oblivious keeps
        // going (each new atom spawns a new trigger) until budget.
        let rules = chain();
        let facts = set(&[atom(0, &[v(10), v(10)])]);
        let mut vocab = vocab();
        let cfg = ChaseConfig::variant(ChaseVariant::Oblivious).with_max_applications(4);
        let res = run_chase(&mut vocab, &facts, &rules, &cfg);
        assert_eq!(res.outcome, ChaseOutcome::ApplicationBudgetExhausted);
        assert_eq!(res.final_instance.len(), 5);
    }

    #[test]
    fn semi_oblivious_dedupes_by_frontier() {
        // r(X, Y) → ∃Z. s(Y, Z): triggers sharing Y produce one null under
        // semi-oblivious, two under oblivious.
        let rules: RuleSet = [Rule::new(
            "mk",
            set(&[atom(0, &[v(0), v(1)])]),
            set(&[atom(1, &[v(1), v(2)])]),
        )
        .unwrap()]
        .into_iter()
        .collect();
        let facts = set(&[atom(0, &[v(10), v(12)]), atom(0, &[v(11), v(12)])]);

        let mut vocab1 = vocab();
        let semi = run_chase(
            &mut vocab1,
            &facts,
            &rules,
            &ChaseConfig::variant(ChaseVariant::SemiOblivious),
        );
        assert!(semi.outcome.terminated());
        assert_eq!(semi.final_instance.pred_count(PredId::from_raw(1)), 1);

        let mut vocab2 = vocab();
        let obl = run_chase(
            &mut vocab2,
            &facts,
            &rules,
            &ChaseConfig::variant(ChaseVariant::Oblivious),
        );
        assert!(obl.outcome.terminated());
        assert_eq!(obl.final_instance.pred_count(PredId::from_raw(1)), 2);
    }

    #[test]
    fn random_scheduler_is_reproducible() {
        let rules = transitivity();
        let facts = set(&[
            atom(0, &[v(10), v(11)]),
            atom(0, &[v(11), v(12)]),
            atom(0, &[v(12), v(13)]),
            atom(0, &[v(13), v(14)]),
        ]);
        let run = |seed| {
            let mut vc = vocab();
            let cfg = ChaseConfig::default().with_scheduler(SchedulerKind::Random(seed));
            run_chase(&mut vc, &facts, &rules, &cfg)
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a.final_instance, b.final_instance);
        // Wall time is the one genuinely nondeterministic counter.
        let strip = |s: ChaseStats| ChaseStats {
            wall_us: 0,
            match_time_us: 0,
            ..s
        };
        assert_eq!(strip(a.stats), strip(b.stats));
        // Different seeds still converge to the same closure (confluence
        // of datalog).
        let c = run(8);
        assert_eq!(a.final_instance, c.final_instance);
    }

    #[test]
    fn all_variants_agree_on_datalog_closure() {
        let rules = transitivity();
        let facts = set(&[atom(0, &[v(10), v(11)]), atom(0, &[v(11), v(12)])]);
        let mut results = Vec::new();
        for variant in [
            ChaseVariant::Oblivious,
            ChaseVariant::SemiOblivious,
            ChaseVariant::Restricted,
            ChaseVariant::Core,
        ] {
            let mut vc = vocab();
            let res = run_chase(&mut vc, &facts, &rules, &ChaseConfig::variant(variant));
            assert!(res.outcome.terminated(), "{variant:?}");
            results.push(res.final_instance);
        }
        // Datalog creates no nulls, so all variants coincide exactly.
        for r in &results[1..] {
            assert_eq!(&results[0], r);
        }
    }

    #[test]
    fn chase_instances_map_into_any_model() {
        // Proposition 1.(1) smoke test: each F_i maps into a hand-built
        // model of the KB.
        let rules = chain();
        let facts = set(&[atom(0, &[v(10), v(11)])]);
        // Model: r(10,11) plus loop on 11.
        let model = set(&[atom(0, &[v(10), v(11)]), atom(0, &[v(11), v(11)])]);
        assert!(is_model_of_rules(&rules, &model));
        let mut vc = vocab();
        let cfg = ChaseConfig::variant(ChaseVariant::Core).with_max_applications(6);
        let res = run_chase(&mut vc, &facts, &rules, &cfg);
        let d = res.derivation.unwrap();
        assert!(d.all_instances_map_into(&model));
        assert!(maps_to(&facts, &model));
    }

    #[test]
    fn consumed_wall_is_deducted_from_the_slice_budget() {
        // A slice whose earlier siblings already spent the whole wall
        // budget must stop immediately instead of getting a fresh clock.
        let rules = chain();
        let facts = set(&[atom(0, &[v(10), v(11)])]);
        let mut vc = vocab();
        let cfg = ChaseConfig::default()
            .with_max_wall(Duration::from_secs(3600))
            .with_consumed_wall(Duration::from_secs(3600));
        let res = run_chase(&mut vc, &facts, &rules, &cfg);
        assert_eq!(res.outcome, ChaseOutcome::WallBudgetExhausted);
        assert_eq!(res.stats.applications, 0);
        // Sanity: without the carried-over consumption the same config
        // makes progress.
        let mut vc2 = vocab();
        let fresh = ChaseConfig::default()
            .with_max_wall(Duration::from_secs(3600))
            .with_max_applications(3);
        let res2 = run_chase(&mut vc2, &facts, &rules, &fresh);
        assert_eq!(res2.stats.applications, 3);
    }

    #[test]
    fn injected_application_fault_panics_exactly_once() {
        use crate::control::{FaultPlan, FaultSite};
        let rules = chain();
        let facts = set(&[atom(0, &[v(10), v(11)])]);
        let plan = FaultPlan::new(vec![FaultSite::Application(2)]);
        let cfg = ChaseConfig::default()
            .with_max_applications(4)
            .with_fault(plan.clone());
        let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut vc = vocab();
            run_chase(&mut vc, &facts, &rules, &cfg)
        }));
        let message = *crashed.unwrap_err().downcast::<String>().unwrap();
        assert!(message.contains("crash at application #2"), "{message}");
        // The site is spent: a retry under the same plan runs clean.
        let mut vc = vocab();
        let res = run_chase(&mut vc, &facts, &rules, &cfg);
        assert_eq!(res.outcome, ChaseOutcome::ApplicationBudgetExhausted);
        assert_eq!(res.stats.applications, 4);
    }

    #[test]
    fn final_only_record_level_omits_derivation() {
        let rules = transitivity();
        let facts = set(&[atom(0, &[v(10), v(11)]), atom(0, &[v(11), v(12)])]);
        let mut vc = vocab();
        let cfg = ChaseConfig::default().with_record(RecordLevel::FinalOnly);
        let res = run_chase(&mut vc, &facts, &rules, &cfg);
        assert!(res.derivation.is_none());
        assert_eq!(res.final_instance.len(), 3);
    }

    #[test]
    fn hard_memory_ceiling_suspends_resumably() {
        let rules = chain();
        let facts = set(&[atom(0, &[v(10), v(11)])]);
        let mut vocab = vocab();
        let cfg = ChaseConfig::default()
            .with_max_applications(10_000)
            .with_mem_hard(8);
        let res = run_chase(&mut vocab, &facts, &rules, &cfg);
        assert_eq!(
            res.outcome,
            ChaseOutcome::Suspended(SuspendReason::MemoryCeiling)
        );
        assert!(res.outcome.resumable());
        assert!(!res.outcome.terminated());
        assert!(res.stats.peak_mem_units > 8);
        // Well short of the application budget: the ceiling cut it.
        assert!(res.stats.applications < 100);
        assert!(res.stats.nulls_minted > 0);
    }

    #[test]
    fn soft_memory_ceiling_degrades_exactly_once() {
        let rules = chain();
        let facts = set(&[atom(0, &[v(10), v(11)])]);
        let mut vocab = vocab();
        let cfg = ChaseConfig::default()
            .with_max_applications(12)
            .with_mem_soft(5);
        let mut degraded_events = 0usize;
        let res = run_chase_controlled(&mut vocab, &facts, &rules, &cfg, None, |ev| {
            if let ChaseEvent::Degraded {
                mem_units,
                soft_limit,
                ..
            } = ev
            {
                assert!(mem_units > soft_limit);
                assert_eq!(soft_limit, 5);
                degraded_events += 1;
            }
            std::ops::ControlFlow::Continue(())
        });
        // Degrading does not stop the run; it runs to its budget.
        assert_eq!(res.outcome, ChaseOutcome::ApplicationBudgetExhausted);
        assert_eq!(degraded_events, 1, "the crossing is reported once");
        assert!(res.stats.peak_mem_units > 5);
        assert!(res.stats.peak_trigger_queue >= 1);
    }

    #[test]
    fn memory_pressure_fault_suspends_at_its_application() {
        let rules = chain();
        let facts = set(&[atom(0, &[v(10), v(11)])]);
        let mut vocab = vocab();
        let cfg = ChaseConfig::default()
            .with_max_applications(10_000)
            .with_fault(FaultPlan::new(vec![crate::FaultSite::MemoryPressure(3)]));
        let res = run_chase(&mut vocab, &facts, &rules, &cfg);
        assert_eq!(
            res.outcome,
            ChaseOutcome::Suspended(SuspendReason::MemoryCeiling)
        );
        assert_eq!(res.stats.applications, 3);
    }

    #[test]
    fn slow_fault_injects_latency() {
        let rules = chain();
        let facts = set(&[atom(0, &[v(10), v(11)])]);
        let mut vocab = vocab();
        let cfg = ChaseConfig::default()
            .with_max_applications(2)
            .with_fault(FaultPlan::new(vec![crate::FaultSite::Slow(1, 30)]));
        let res = run_chase(&mut vocab, &facts, &rules, &cfg);
        assert!(
            res.stats.wall_us >= 30_000,
            "a slow:1:30 site sleeps 30ms, got {}us",
            res.stats.wall_us
        );
    }
}

#[cfg(test)]
mod frugal_tests {
    use super::*;
    use crate::rule::{Rule, RuleSet};
    use chase_atoms::{Atom, PredId, Term, VarId};
    use chase_homomorphism::is_core;

    fn v(i: u32) -> Term {
        Term::Var(VarId::from_raw(i))
    }

    fn atom(pr: u32, args: &[Term]) -> Atom {
        Atom::new(PredId::from_raw(pr), args.to_vec())
    }

    fn set(atoms: &[Atom]) -> AtomSet {
        atoms.iter().cloned().collect()
    }

    fn vocab() -> Vocabulary {
        let mut v = Vocabulary::new();
        v.ensure_var(VarId::from_raw(99));
        v
    }

    #[test]
    fn frugal_folds_redundant_fresh_nulls() {
        // r(X, Y) → ∃Z, W. s(Y, Z) ∧ s(Y, W): the two fresh nulls are
        // interchangeable; the frugal chase keeps only one.
        let rules: RuleSet = [Rule::new(
            "mk",
            set(&[atom(0, &[v(0), v(1)])]),
            set(&[atom(1, &[v(1), v(2)]), atom(1, &[v(1), v(3)])]),
        )
        .unwrap()]
        .into_iter()
        .collect();
        let facts = set(&[atom(0, &[v(10), v(11)])]);

        let mut vc = vocab();
        let frugal = run_chase(
            &mut vc,
            &facts,
            &rules,
            &ChaseConfig::variant(ChaseVariant::Frugal),
        );
        assert!(frugal.outcome.terminated());
        assert_eq!(
            frugal.final_instance.pred_count(PredId::from_raw(1)),
            1,
            "one of the twin nulls folds away"
        );
        assert!(frugal.stats.retractions >= 1);

        let mut vc = vocab();
        let restricted = run_chase(
            &mut vc,
            &facts,
            &rules,
            &ChaseConfig::variant(ChaseVariant::Restricted),
        );
        assert_eq!(
            restricted.final_instance.pred_count(PredId::from_raw(1)),
            2,
            "restricted keeps both"
        );
    }

    #[test]
    fn frugal_leaves_old_redundancy_untouched() {
        // Initial facts carry a redundancy the frugal chase must never
        // fold (only fresh nulls move), while the core chase removes it.
        let rules: RuleSet = [Rule::new(
            "noop",
            set(&[atom(0, &[v(0), v(1)])]),
            set(&[atom(2, &[v(0)])]),
        )
        .unwrap()]
        .into_iter()
        .collect();
        // p(10,11) is redundant given p(10,10).
        let facts = set(&[atom(0, &[v(10), v(11)]), atom(0, &[v(10), v(10)])]);

        let mut vc = vocab();
        let frugal = run_chase(
            &mut vc,
            &facts,
            &rules,
            &ChaseConfig::variant(ChaseVariant::Frugal),
        );
        assert!(frugal.outcome.terminated());
        assert!(frugal.final_instance.contains(&atom(0, &[v(10), v(11)])));
        assert!(!is_core(&frugal.final_instance));

        let mut vc = vocab();
        let core = run_chase(
            &mut vc,
            &facts,
            &rules,
            &ChaseConfig::variant(ChaseVariant::Core),
        );
        assert!(core.outcome.terminated());
        assert!(is_core(&core.final_instance));
        assert!(core.final_instance.len() < frugal.final_instance.len());
    }

    #[test]
    fn frugal_derivation_validates() {
        let rules: RuleSet = [Rule::new(
            "mk",
            set(&[atom(0, &[v(0), v(1)])]),
            set(&[atom(1, &[v(1), v(2)]), atom(1, &[v(1), v(3)])]),
        )
        .unwrap()]
        .into_iter()
        .collect();
        let facts = set(&[atom(0, &[v(10), v(11)])]);
        let mut vc = vocab();
        let res = run_chase(
            &mut vc,
            &facts,
            &rules,
            &ChaseConfig::variant(ChaseVariant::Frugal),
        );
        let d = res.derivation.unwrap();
        assert_eq!(d.validate(), Ok(()));
    }
}

#[cfg(test)]
mod semi_naive_tests {
    use super::*;
    use crate::rule::{Rule, RuleSet};
    use chase_atoms::{Atom, PredId, Term, VarId};

    fn v(i: u32) -> Term {
        Term::Var(VarId::from_raw(i))
    }

    fn atom(pr: u32, args: &[Term]) -> Atom {
        Atom::new(PredId::from_raw(pr), args.to_vec())
    }

    fn set(atoms: &[Atom]) -> AtomSet {
        atoms.iter().cloned().collect()
    }

    /// On datalog the Frugal variant never folds (no fresh nulls to
    /// move), so it behaves as a full-rescan restricted chase — a perfect
    /// oracle for the semi-naive Restricted runner.
    #[test]
    fn semi_naive_matches_full_rescan_on_datalog() {
        let rules: RuleSet = [
            Rule::new(
                "trans",
                set(&[atom(0, &[v(0), v(1)]), atom(0, &[v(1), v(2)])]),
                set(&[atom(0, &[v(0), v(2)])]),
            )
            .unwrap(),
            Rule::new(
                "inv",
                set(&[atom(0, &[v(0), v(1)])]),
                set(&[atom(1, &[v(1), v(0)])]),
            )
            .unwrap(),
        ]
        .into_iter()
        .collect();
        let facts = set(&[
            atom(0, &[v(10), v(11)]),
            atom(0, &[v(11), v(12)]),
            atom(0, &[v(12), v(13)]),
            atom(0, &[v(13), v(10)]),
        ]);
        let run = |variant| {
            let mut vocab = Vocabulary::new();
            run_chase(&mut vocab, &facts, &rules, &ChaseConfig::variant(variant))
        };
        let semi = run(ChaseVariant::Restricted);
        let full = run(ChaseVariant::Frugal);
        assert!(semi.outcome.terminated() && full.outcome.terminated());
        assert_eq!(semi.final_instance, full.final_instance);
    }

    /// Existential rules: semi-naive restricted still reaches the same
    /// fixpoint as the (full-rescan) core chase up to hom-equivalence on
    /// a terminating KB.
    #[test]
    fn semi_naive_reaches_fixpoint_with_existentials() {
        // r(X,Y) → ∃Z. s(Y,Z); s(X,Y) → t(X): terminates after 2 rounds.
        let rules: RuleSet = [
            Rule::new(
                "mk",
                set(&[atom(0, &[v(0), v(1)])]),
                set(&[atom(1, &[v(1), v(2)])]),
            )
            .unwrap(),
            Rule::new(
                "mark",
                set(&[atom(1, &[v(0), v(1)])]),
                set(&[atom(2, &[v(0)])]),
            )
            .unwrap(),
        ]
        .into_iter()
        .collect();
        let facts = set(&[atom(0, &[v(10), v(11)]), atom(0, &[v(12), v(11)])]);
        let mut vocab = Vocabulary::new();
        vocab.ensure_var(VarId::from_raw(50));
        let res = run_chase(
            &mut vocab,
            &facts,
            &rules,
            &ChaseConfig::variant(ChaseVariant::Restricted),
        );
        assert!(res.outcome.terminated());
        assert!(crate::trigger::is_model_of_rules(
            &rules,
            &res.final_instance
        ));
        assert_eq!(res.final_instance.pred_count(PredId::from_raw(2)), 1);
    }
}

#[cfg(test)]
mod control_tests {
    use super::*;
    use crate::rule::{Rule, RuleSet};
    use chase_atoms::{Atom, PredId, Term, VarId};

    fn v(i: u32) -> Term {
        Term::Var(VarId::from_raw(i))
    }

    fn atom(pr: u32, args: &[Term]) -> Atom {
        Atom::new(PredId::from_raw(pr), args.to_vec())
    }

    fn set(atoms: &[Atom]) -> AtomSet {
        atoms.iter().cloned().collect()
    }

    /// r(X, Y) → ∃Z. r(Y, Z): divergent under the restricted chase.
    fn chain() -> (Vocabulary, RuleSet, AtomSet) {
        let mut vocab = Vocabulary::new();
        vocab.ensure_var(VarId::from_raw(50));
        let rules: RuleSet = [Rule::new(
            "chain",
            set(&[atom(0, &[v(0), v(1)])]),
            set(&[atom(0, &[v(1), v(2)])]),
        )
        .unwrap()]
        .into_iter()
        .collect();
        (vocab, rules, set(&[atom(0, &[v(10), v(11)])]))
    }

    #[test]
    fn pre_cancelled_token_stops_before_any_application() {
        let (mut vocab, rules, facts) = chain();
        let token = CancelToken::new();
        token.cancel();
        let res = run_chase_controlled(
            &mut vocab,
            &facts,
            &rules,
            &ChaseConfig::default(),
            Some(&token),
            |_| std::ops::ControlFlow::Continue(()),
        );
        assert_eq!(res.outcome, ChaseOutcome::Cancelled);
        assert_eq!(res.stats.applications, 0);
        assert_eq!(res.final_instance, facts);
    }

    #[test]
    fn mid_run_cancellation_keeps_a_valid_prefix() {
        let (mut vocab, rules, facts) = chain();
        let token = CancelToken::new();
        let cancel_at = 3usize;
        let t2 = token.clone();
        let res = run_chase_controlled(
            &mut vocab,
            &facts,
            &rules,
            &ChaseConfig::default().with_max_applications(1_000),
            Some(&token),
            |event| {
                if let ChaseEvent::StepApplied { stats, .. } = event {
                    if stats.applications >= cancel_at {
                        t2.cancel();
                    }
                }
                std::ops::ControlFlow::Continue(())
            },
        );
        assert_eq!(res.outcome, ChaseOutcome::Cancelled);
        assert_eq!(res.stats.applications, cancel_at);
        let d = res.derivation.unwrap();
        assert_eq!(d.validate(), Ok(()));
    }

    #[test]
    fn zero_wall_budget_exhausts_immediately() {
        let (mut vocab, rules, facts) = chain();
        let cfg = ChaseConfig::default().with_max_wall(Duration::ZERO);
        let res = run_chase(&mut vocab, &facts, &rules, &cfg);
        assert_eq!(res.outcome, ChaseOutcome::WallBudgetExhausted);
        assert_eq!(res.stats.applications, 0);
    }

    #[test]
    fn events_stream_rounds_steps_and_retractions() {
        // A head with twin existentials under the core chase retracts
        // every step, so all three event kinds fire.
        let mut vocab = Vocabulary::new();
        vocab.ensure_var(VarId::from_raw(50));
        let rules: RuleSet = [Rule::new(
            "mk",
            set(&[atom(0, &[v(0), v(1)])]),
            set(&[atom(1, &[v(1), v(2)]), atom(1, &[v(1), v(3)])]),
        )
        .unwrap()]
        .into_iter()
        .collect();
        let facts = set(&[atom(0, &[v(10), v(11)])]);
        let (mut rounds, mut steps, mut retractions) = (0, 0, 0);
        let res = run_chase_controlled(
            &mut vocab,
            &facts,
            &rules,
            &ChaseConfig::variant(ChaseVariant::Core),
            None,
            |event| {
                match event {
                    ChaseEvent::RoundStarted { .. } => rounds += 1,
                    ChaseEvent::StepApplied { .. } => steps += 1,
                    ChaseEvent::CoreRetracted { before, after, .. } => {
                        assert!(after < before);
                        retractions += 1;
                    }
                    ChaseEvent::Degraded { .. } => unreachable!("no memory ceiling set"),
                }
                std::ops::ControlFlow::Continue(())
            },
        );
        assert!(res.outcome.terminated());
        assert_eq!(rounds, res.stats.rounds);
        assert_eq!(steps, res.stats.applications);
        assert_eq!(retractions, res.stats.retractions);
    }

    /// An `n × n` unlabeled grid over distinct variables: a core whose
    /// eliminability probes are expensive to refute — the instance that
    /// used to make a single core phase overshoot every budget.
    fn grid_facts(n: u32) -> AtomSet {
        let idx = |i: u32, j: u32| v(i * n + j);
        let mut atoms = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if j + 1 < n {
                    atoms.push(atom(0, &[idx(i, j), idx(i, j + 1)]));
                }
                if i + 1 < n {
                    atoms.push(atom(1, &[idx(i, j), idx(i + 1, j)]));
                }
            }
        }
        atoms.into_iter().collect()
    }

    #[test]
    fn core_step_stops_within_tolerance_of_max_wall() {
        // Un-budgeted, coring this grid takes tens of seconds (it is a
        // core, so every probe must exhaust its search space). The
        // deadline must now cut *inside* the phase, not after it.
        let mut vocab = Vocabulary::new();
        vocab.ensure_var(VarId::from_raw(16 * 16 + 1));
        let facts = grid_facts(16);
        let max_wall = Duration::from_millis(150);
        let cfg = ChaseConfig::variant(ChaseVariant::Core).with_max_wall(max_wall);
        let t = Instant::now();
        let res = run_chase(&mut vocab, &facts, &RuleSet::default(), &cfg);
        let elapsed = t.elapsed();
        assert_eq!(res.outcome, ChaseOutcome::WallBudgetExhausted);
        assert!(
            res.stats.core_truncations >= 1,
            "the budget must have cut a core phase: {:?}",
            res.stats
        );
        assert!(
            elapsed < Duration::from_millis(2_500),
            "core step overshot max_wall={max_wall:?} to {elapsed:?}"
        );
    }

    #[test]
    fn cancel_token_cuts_a_running_core_step() {
        let mut vocab = Vocabulary::new();
        vocab.ensure_var(VarId::from_raw(16 * 16 + 1));
        let facts = grid_facts(16);
        let token = CancelToken::new();
        let t2 = token.clone();
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            t2.cancel();
        });
        let t = Instant::now();
        let res = run_chase_controlled(
            &mut vocab,
            &facts,
            &RuleSet::default(),
            &ChaseConfig::variant(ChaseVariant::Core),
            Some(&token),
            |_| std::ops::ControlFlow::Continue(()),
        );
        let elapsed = t.elapsed();
        canceller.join().unwrap();
        assert_eq!(res.outcome, ChaseOutcome::Cancelled);
        assert!(
            elapsed < Duration::from_millis(2_500),
            "cancel mid-core took {elapsed:?}"
        );
    }

    #[test]
    fn resuming_from_final_instance_matches_uninterrupted_run() {
        // Budget-split determinism for the satisfaction-based variants:
        // chase(5 apps) then chase-from-instance equals one chase(∞) —
        // the engine-level law behind service checkpoints.
        let mut vocab = Vocabulary::new();
        vocab.ensure_var(VarId::from_raw(50));
        // Terminating KB: transitive closure of a 5-chain.
        let rules_t: RuleSet = [Rule::new(
            "trans",
            set(&[atom(0, &[v(0), v(1)]), atom(0, &[v(1), v(2)])]),
            set(&[atom(0, &[v(0), v(2)])]),
        )
        .unwrap()]
        .into_iter()
        .collect();
        let facts = set(&[
            atom(0, &[v(10), v(11)]),
            atom(0, &[v(11), v(12)]),
            atom(0, &[v(12), v(13)]),
            atom(0, &[v(13), v(14)]),
        ]);
        let full = run_chase(
            &mut vocab.clone(),
            &facts,
            &rules_t,
            &ChaseConfig::default(),
        );
        assert!(full.outcome.terminated());
        let cfg5 = ChaseConfig::default().with_max_applications(5);
        let part = run_chase(&mut vocab, &facts, &rules_t, &cfg5);
        assert_eq!(part.outcome, ChaseOutcome::ApplicationBudgetExhausted);
        assert!(part.outcome.resumable());
        let resumed = run_chase(
            &mut vocab,
            &part.final_instance,
            &rules_t,
            &ChaseConfig::default(),
        );
        assert!(resumed.outcome.terminated());
        assert_eq!(resumed.final_instance, full.final_instance);
    }
}

#[cfg(test)]
mod skolem_chase_tests {
    use super::*;
    use crate::rule::{Rule, RuleSet};
    use chase_atoms::{Atom, PredId, Term, VarId};

    fn v(i: u32) -> Term {
        Term::Var(VarId::from_raw(i))
    }

    fn atom(pr: u32, args: &[Term]) -> Atom {
        Atom::new(PredId::from_raw(pr), args.to_vec())
    }

    fn set(atoms: &[Atom]) -> AtomSet {
        atoms.iter().cloned().collect()
    }

    /// Restart safety: two independent semi-oblivious runs on the same KB
    /// produce literally identical instances (not merely isomorphic).
    #[test]
    fn semi_oblivious_runs_are_bitwise_reproducible() {
        let rules: RuleSet = [
            Rule::new(
                "mk",
                set(&[atom(0, &[v(0), v(1)])]),
                set(&[atom(1, &[v(1), v(2)])]),
            )
            .unwrap(),
            Rule::new(
                "back",
                set(&[atom(1, &[v(0), v(1)])]),
                set(&[atom(0, &[v(1), v(0)])]),
            )
            .unwrap(),
        ]
        .into_iter()
        .collect();
        let facts = set(&[atom(0, &[v(10), v(11)]), atom(0, &[v(12), v(11)])]);
        let run = || {
            let mut vocab = Vocabulary::new();
            vocab.ensure_var(VarId::from_raw(50));
            run_chase(
                &mut vocab,
                &facts,
                &rules,
                &ChaseConfig::variant(ChaseVariant::SemiOblivious).with_max_applications(20),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.final_instance, b.final_instance);
        let strip = |s: ChaseStats| ChaseStats {
            wall_us: 0,
            match_time_us: 0,
            ..s
        };
        assert_eq!(strip(a.stats), strip(b.stats));
    }

    fn vocab() -> Vocabulary {
        let mut v = Vocabulary::new();
        v.ensure_var(VarId::from_raw(99));
        v
    }

    /// p(X) → ∃Z. e(X, Z) followed by a datalog projection of `e`.
    fn two_strata_rules() -> RuleSet {
        [
            Rule::new(
                "mk",
                set(&[atom(0, &[v(0)])]),
                set(&[atom(1, &[v(0), v(1)])]),
            )
            .unwrap(),
            Rule::new(
                "proj",
                set(&[atom(1, &[v(0), v(1)])]),
                set(&[atom(2, &[v(1)])]),
            )
            .unwrap(),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn stratified_schedule_matches_unstratified_result() {
        let rules = two_strata_rules();
        let facts = set(&[atom(0, &[v(10)]), atom(0, &[v(11)])]);
        let unstrat = {
            let mut vocab = vocab();
            run_chase(&mut vocab, &facts, &rules, &ChaseConfig::default())
        };
        let strat = {
            let mut vocab = vocab();
            let cfg = ChaseConfig::default().with_strata(vec![vec![0], vec![1]]);
            run_chase(&mut vocab, &facts, &rules, &cfg)
        };
        assert!(unstrat.outcome.terminated());
        assert!(strat.outcome.terminated());
        assert_eq!(strat.final_instance.len(), unstrat.final_instance.len());
        assert!(crate::trigger::is_model_of_rules(
            &rules,
            &strat.final_instance
        ));
    }

    #[test]
    fn stratified_schedule_saturates_each_stratum_in_order() {
        // Schedule the projection rule FIRST: the stratum saturates
        // immediately (no `e`-facts yet), then the existential stratum
        // runs — but its output is never projected, because stratum 0
        // is already closed. The final instance is a model of stratum 1
        // but deliberately not of the full ruleset: strata really do
        // run to saturation in order, not interleaved.
        let rules = two_strata_rules();
        let facts = set(&[atom(0, &[v(10)])]);
        let mut vocab = vocab();
        let cfg = ChaseConfig::default().with_strata(vec![vec![1], vec![0]]);
        let res = run_chase(&mut vocab, &facts, &rules, &cfg);
        assert!(res.outcome.terminated());
        assert!(!crate::trigger::is_model_of_rules(
            &rules,
            &res.final_instance
        ));
        assert_eq!(
            res.final_instance
                .iter()
                .filter(|a| a.pred() == PredId::from_raw(2))
                .count(),
            0,
            "projection stratum closed before e-facts existed"
        );
    }

    #[test]
    fn search_budget_cancel_flag_interrupts_chase() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        // r(X, Y) → ∃Z. r(Y, Z): would diverge without the flag.
        let rules: RuleSet = [Rule::new(
            "chain",
            set(&[atom(0, &[v(0), v(1)])]),
            set(&[atom(0, &[v(1), v(2)])]),
        )
        .unwrap()]
        .into_iter()
        .collect();
        let facts = set(&[atom(0, &[v(10), v(11)])]);
        let flag = Arc::new(AtomicBool::new(true));
        flag.store(true, Ordering::SeqCst);
        let mut vocab = vocab();
        let cfg = ChaseConfig::variant(ChaseVariant::Oblivious)
            .with_search_budget(chase_homomorphism::SearchBudget::unlimited().with_cancel(flag));
        let res = run_chase(&mut vocab, &facts, &rules, &cfg);
        assert_eq!(res.outcome, ChaseOutcome::Cancelled);
    }
}
