//! Treewidth profiles of derivations — the raw material for the
//! uniform/recurring boundedness analyses of Section 5.

use chase_treewidth::{treewidth_bounds, TwBounds};

use crate::derivation::Derivation;

/// Certified treewidth bounds for every recorded instance `F_i`.
pub fn treewidth_profile(d: &Derivation) -> Vec<TwBounds> {
    d.instances().map(treewidth_bounds).collect()
}

/// A certified *uniform* treewidth bound for the recorded prefix: the
/// maximum of the per-instance upper bounds (every `tw(F_i)` is ≤ this).
pub fn certified_uniform_bound(d: &Derivation) -> usize {
    treewidth_profile(d)
        .iter()
        .map(|b| b.upper)
        .max()
        .unwrap_or(0)
}

/// A certified statement that the prefix treewidth *exceeds* `k` from step
/// `from` on: every instance in the suffix has lower bound > `k`.
pub fn certified_exceeds_from(d: &Derivation, from: usize, k: usize) -> bool {
    let profile = treewidth_profile(d);
    from < profile.len() && profile[from..].iter().all(|b| b.lower > k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase::{run_chase, ChaseConfig, ChaseVariant};
    use crate::rule::{Rule, RuleSet};
    use chase_atoms::{Atom, AtomSet, PredId, Term, VarId, Vocabulary};

    fn v(i: u32) -> Term {
        Term::Var(VarId::from_raw(i))
    }

    fn atom(pr: u32, args: &[Term]) -> Atom {
        Atom::new(PredId::from_raw(pr), args.to_vec())
    }

    fn set(atoms: &[Atom]) -> AtomSet {
        atoms.iter().cloned().collect()
    }

    #[test]
    fn chain_rule_profile_stays_width_one() {
        // r(X,Y) → ∃Z. r(Y,Z) keeps producing a path: tw 1 throughout.
        let rules: RuleSet = [Rule::new(
            "chain",
            set(&[atom(0, &[v(0), v(1)])]),
            set(&[atom(0, &[v(1), v(2)])]),
        )
        .unwrap()]
        .into_iter()
        .collect();
        let facts = set(&[atom(0, &[v(10), v(11)])]);
        let mut vocab = Vocabulary::new();
        vocab.ensure_var(VarId::from_raw(99));
        let cfg = ChaseConfig::variant(ChaseVariant::Restricted).with_max_applications(6);
        let res = run_chase(&mut vocab, &facts, &rules, &cfg);
        let d = res.derivation.unwrap();
        let profile = treewidth_profile(&d);
        assert_eq!(profile.len(), 7);
        assert!(profile.iter().all(|b| b.upper == 1));
        assert_eq!(certified_uniform_bound(&d), 1);
        assert!(!certified_exceeds_from(&d, 0, 1));
        assert!(certified_exceeds_from(&d, 0, 0));
    }
}
