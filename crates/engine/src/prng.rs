//! A small deterministic PRNG (splitmix64) plus the few sampling helpers
//! the workspace needs (ranges, booleans, Fisher–Yates shuffles).
//!
//! The chase scheduler and the workload generators only ever need
//! *seeded, reproducible* randomness — an ambient OS-entropy RNG would
//! actively hurt (batch runs and checkpoint/resume must be replayable) —
//! so the whole workspace funnels randomness through this one generator
//! instead of an external crate.

/// A splitmix64 generator. Every stream is fully determined by its seed.
///
/// Splitmix64 passes `BigCrush`, has a full 2^64 period over its state
/// increment, and is two multiplications per draw — more than enough for
/// scheduling jitter and test-case generation (it is the generator used
/// to seed xoshiro in the reference implementations).
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from an explicit seed. Equal seeds produce
    /// equal streams on every platform.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from `0..n`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn gen_range(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_range(0) is empty");
        // Multiply-shift range reduction (Lemire); the bias for the
        // ranges used here (≪ 2^32) is far below observability.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// A fair coin flip.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// An in-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn known_answer_vector() {
        // Reference values of splitmix64(seed = 1234567).
        let mut g = SplitMix64::new(1234567);
        assert_eq!(g.next_u64(), 6457827717110365317);
        assert_eq!(g.next_u64(), 3203168211198807973);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut g = SplitMix64::new(7);
        for n in 1..50 {
            for _ in 0..100 {
                assert!(g.gen_range(n) < n);
            }
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut g = SplitMix64::new(9);
        let mut v: Vec<u32> = (0..100).collect();
        g.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle is not identity");
    }
}
