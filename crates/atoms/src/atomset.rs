//! Atomsets (instances): indexed, deterministic sets of atoms.
//!
//! An [`AtomSet`] corresponds to the paper's notion of a (finite) atomset /
//! instance. It keeps three secondary indexes — by predicate, by term, and
//! by *(predicate, arity, position, term)* — so the homomorphism engine can
//! enumerate candidate atoms through point lookups and posting-list
//! intersection instead of a scan-and-filter, and iterates in insertion
//! order so every printout and derived artifact is deterministic.
//!
//! ## Positional postings
//!
//! The positional index maps every `(pred, arity)` signature to one
//! posting map per argument position: `positions[p][t]` is the ascending
//! list of ids of live atoms whose `p`-th argument is exactly `t`.
//! Candidate enumeration for a partially-bound pattern atom intersects the
//! postings of its determined positions ([`AtomSet::matching_ids`]) via an
//! [`IdBits`] scratch bitset, so the *exact* candidate set — not an
//! estimate — costs roughly the size of the smallest posting involved.
//! Postings are maintained incrementally through insert, remove and
//! auto-compaction.

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use crate::atom::Atom;
use crate::bitset::IdBits;
use crate::substitution::Substitution;
use crate::term::{ConstId, Term, VarId};
use crate::vocab::PredId;

/// A handle to an atom inside one [`AtomSet`].
///
/// Ids are allocated in insertion order, so sorting by `AtomId` recovers
/// insertion order even after removals. They are **not** stable across
/// mutations: a removal may auto-compact the arena (see
/// [`AtomSet::compact`]), which reassigns ids — hold the [`Atom`]
/// itself, not its id, across anything that removes atoms.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct AtomId(u32);

impl AtomId {
    /// The raw index of this atom id.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

/// The per-(predicate, arity) slice of the positional index.
#[derive(Clone, Default)]
struct SigIndex {
    /// Ids of live atoms with this signature, in insertion order.
    ids: BTreeSet<AtomId>,
    /// One posting map per argument position: term → ascending id list.
    positions: Vec<HashMap<Term, Vec<u32>>>,
}

/// A finite set of atoms with predicate, term-occurrence and positional
/// `(pred, arity, position, term)` indexes.
#[derive(Clone, Default)]
pub struct AtomSet {
    /// Arena of atoms; `None` marks a removed (tombstoned) slot.
    slots: Vec<Option<Atom>>,
    /// Exact-match lookup (also the deduplication map).
    lookup: HashMap<Atom, AtomId>,
    /// Ids of live atoms per predicate, in insertion order.
    by_pred: HashMap<PredId, BTreeSet<AtomId>>,
    /// Ids of live atoms per occurring term, in insertion order.
    by_term: HashMap<Term, BTreeSet<AtomId>>,
    /// Positional postings per `(pred, arity)` signature.
    by_sig: HashMap<(PredId, u32), SigIndex>,
    /// Number of live non-empty postings (a structural gauge the engine
    /// reports as an index stat).
    postings: usize,
    /// Number of live atoms.
    live: usize,
    /// Whether removals may auto-compact the arena. Disabled only by
    /// differential tests that need [`AtomId`]s stable across a whole
    /// run.
    no_auto_compact: bool,
    /// Number of removal-triggered auto-compactions this set (or the
    /// sets it was derived from via [`Clone`]/[`AtomSet::apply`]) has
    /// performed — lets regression tests assert compaction really fired.
    compactions: usize,
}

/// Arenas smaller than this never auto-compact: a handful of dead slots
/// is cheaper than the rebuild.
const COMPACT_MIN_SLOTS: usize = 64;

impl AtomSet {
    /// Creates an empty atomset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of atoms in the set.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Inserts an atom; returns `true` if it was not already present.
    pub fn insert(&mut self, atom: Atom) -> bool {
        if self.lookup.contains_key(&atom) {
            return false;
        }
        let id = AtomId(u32::try_from(self.slots.len()).expect("too many atoms"));
        for t in atom.terms() {
            self.by_term.entry(t).or_default().insert(id);
        }
        self.by_pred.entry(atom.pred()).or_default().insert(id);
        let sig = self
            .by_sig
            .entry((atom.pred(), atom.arity() as u32))
            .or_default();
        if sig.positions.len() < atom.arity() {
            sig.positions.resize_with(atom.arity(), HashMap::new);
        }
        sig.ids.insert(id);
        for (pos, &t) in atom.args().iter().enumerate() {
            let posting = sig.positions[pos].entry(t).or_default();
            if posting.is_empty() {
                self.postings += 1;
            }
            // Ids are allocated in increasing order (and the index is
            // rebuilt in insertion order on compaction), so pushing keeps
            // every posting sorted ascending.
            debug_assert!(posting.last().is_none_or(|&last| last < id.0));
            posting.push(id.0);
        }
        self.lookup.insert(atom.clone(), id);
        self.slots.push(Some(atom));
        self.live += 1;
        true
    }

    /// Removes an atom; returns `true` if it was present.
    ///
    /// Removal may auto-compact the arena (see [`AtomSet::compact`]),
    /// invalidating previously obtained [`AtomId`]s.
    pub fn remove(&mut self, atom: &Atom) -> bool {
        let Some(id) = self.lookup.remove(atom) else {
            return false;
        };
        let stored = self.slots[id.0 as usize]
            .take()
            .expect("lookup/slot desync");
        for t in stored.terms() {
            if let Some(ids) = self.by_term.get_mut(&t) {
                ids.remove(&id);
                if ids.is_empty() {
                    self.by_term.remove(&t);
                }
            }
        }
        if let Some(ids) = self.by_pred.get_mut(&stored.pred()) {
            ids.remove(&id);
            if ids.is_empty() {
                self.by_pred.remove(&stored.pred());
            }
        }
        let sig_key = (stored.pred(), stored.arity() as u32);
        if let Some(sig) = self.by_sig.get_mut(&sig_key) {
            sig.ids.remove(&id);
            for (pos, &t) in stored.args().iter().enumerate() {
                if let Some(posting) = sig.positions[pos].get_mut(&t) {
                    if let Ok(at) = posting.binary_search(&id.0) {
                        posting.remove(at);
                    }
                    if posting.is_empty() {
                        sig.positions[pos].remove(&t);
                        self.postings -= 1;
                    }
                }
            }
            if sig.ids.is_empty() {
                self.by_sig.remove(&sig_key);
            }
        }
        self.live -= 1;
        self.maybe_compact();
        true
    }

    /// Compacts once tombstones outnumber live atoms two-to-one. The
    /// rebuild is O(live), so charging it to the ≥ 2·live removals since
    /// the last compaction keeps removal amortized O(1) while bounding
    /// the arena at 3·live + [`COMPACT_MIN_SLOTS`] slots — without this,
    /// a retraction-heavy core chase grows `slots` monotonically even
    /// when the live instance stays small.
    fn maybe_compact(&mut self) {
        let dead = self.slots.len() - self.live;
        if !self.no_auto_compact && self.slots.len() >= COMPACT_MIN_SLOTS && dead > 2 * self.live {
            self.compact();
            self.compactions += 1;
        }
    }

    /// Number of removal-triggered auto-compactions performed so far
    /// (inherited through [`Clone`] and [`AtomSet::apply`]).
    pub fn compactions(&self) -> usize {
        self.compactions
    }

    /// Disables (or re-enables) removal-triggered auto-compaction.
    ///
    /// With auto-compaction off, [`AtomId`]s stay stable across removals
    /// and the arena grows monotonically — the reference behaviour the
    /// compaction regression tests compare against. The flag survives
    /// [`Clone`], [`AtomSet::apply`] and explicit [`AtomSet::compact`]
    /// calls.
    pub fn set_auto_compact(&mut self, enabled: bool) {
        self.no_auto_compact = !enabled;
    }

    /// Does the set contain the given atom?
    pub fn contains(&self, atom: &Atom) -> bool {
        self.lookup.contains_key(atom)
    }

    /// Returns the id of an atom if present.
    pub fn id_of(&self, atom: &Atom) -> Option<AtomId> {
        self.lookup.get(atom).copied()
    }

    /// Returns the atom behind an id, if still live.
    pub fn get(&self, id: AtomId) -> Option<&Atom> {
        self.slots.get(id.0 as usize).and_then(Option::as_ref)
    }

    /// Iterates over the atoms in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Atom> {
        self.slots.iter().filter_map(Option::as_ref)
    }

    /// Iterates over `(id, atom)` pairs in insertion order.
    pub fn iter_with_ids(&self) -> impl Iterator<Item = (AtomId, &Atom)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|a| (AtomId(i as u32), a)))
    }

    /// Iterates over atoms with the given predicate, in insertion order.
    pub fn with_pred(&self, pred: PredId) -> impl Iterator<Item = &Atom> {
        self.by_pred
            .get(&pred)
            .into_iter()
            .flat_map(|ids| ids.iter())
            .map(|&id| self.get(id).expect("index/slot desync"))
    }

    /// Number of atoms with the given predicate.
    pub fn pred_count(&self, pred: PredId) -> usize {
        self.by_pred.get(&pred).map_or(0, BTreeSet::len)
    }

    /// Iterates over atoms mentioning the given term, in insertion order.
    pub fn with_term(&self, term: Term) -> impl Iterator<Item = &Atom> {
        self.by_term
            .get(&term)
            .into_iter()
            .flat_map(|ids| ids.iter())
            .map(|&id| self.get(id).expect("index/slot desync"))
    }

    /// Number of atoms mentioning the given term.
    pub fn term_count(&self, term: Term) -> usize {
        self.by_term.get(&term).map_or(0, BTreeSet::len)
    }

    /// Does any atom mention the given term?
    pub fn mentions(&self, term: Term) -> bool {
        self.by_term.contains_key(&term)
    }

    /// The set of terms occurring in the atomset (`terms(A)`), sorted.
    pub fn terms(&self) -> BTreeSet<Term> {
        self.by_term.keys().copied().collect()
    }

    /// The set of variables occurring in the atomset (`vars(A)`), sorted.
    pub fn vars(&self) -> BTreeSet<VarId> {
        self.by_term.keys().filter_map(|t| t.as_var()).collect()
    }

    /// The set of constants occurring in the atomset, sorted.
    pub fn constants(&self) -> BTreeSet<ConstId> {
        self.by_term.keys().filter_map(|t| t.as_const()).collect()
    }

    /// The set of predicates with at least one atom, sorted.
    pub fn preds(&self) -> BTreeSet<PredId> {
        self.by_pred.keys().copied().collect()
    }

    /// Applies a substitution, producing a new atomset `σ(A)`.
    pub fn apply(&self, sigma: &Substitution) -> AtomSet {
        let mut out: AtomSet = self.iter().map(|a| sigma.apply_atom(a)).collect();
        out.no_auto_compact = self.no_auto_compact;
        out.compactions = self.compactions;
        out
    }

    /// Applies a substitution in place: atoms whose image differs are
    /// removed and the images inserted. Equivalent to
    /// `*self = self.apply(sigma)` as a set, but O(moved) instead of a
    /// full rebuild — the win when a retraction folds away a handful of
    /// nulls from a large instance. Removals may trigger
    /// auto-compaction, so callers must not hold [`AtomId`]s across the
    /// call.
    pub fn apply_in_place(&mut self, sigma: &Substitution) {
        let moved: Vec<(Atom, Atom)> = self
            .iter()
            .filter_map(|a| {
                let b = sigma.apply_atom(a);
                (b != *a).then(|| (a.clone(), b))
            })
            .collect();
        for (old, _) in &moved {
            self.remove(old);
        }
        for (_, new) in moved {
            self.insert(new);
        }
    }

    /// Is `self ⊆ other`?
    pub fn is_subset_of(&self, other: &AtomSet) -> bool {
        self.len() <= other.len() && self.iter().all(|a| other.contains(a))
    }

    /// The sub-atomset *induced* by a set of terms: atoms whose terms all
    /// belong to `keep`.
    pub fn induced_by_terms(&self, keep: &BTreeSet<Term>) -> AtomSet {
        self.iter()
            .filter(|a| a.terms().all(|t| keep.contains(&t)))
            .cloned()
            .collect()
    }

    /// Removes every atom mentioning the given term; returns how many were
    /// removed.
    pub fn remove_term(&mut self, term: Term) -> usize {
        let victims: Vec<Atom> = self.with_term(term).cloned().collect();
        for a in &victims {
            self.remove(a);
        }
        victims.len()
    }

    /// Inserts all atoms of `other`; returns how many were new.
    pub fn union_with(&mut self, other: &AtomSet) -> usize {
        let mut added = 0;
        for a in other.iter() {
            if self.insert(a.clone()) {
                added += 1;
            }
        }
        added
    }

    /// The atoms as a sorted vector (canonical form, independent of
    /// insertion order). Useful for hashing and set-level comparison.
    pub fn sorted_atoms(&self) -> Vec<Atom> {
        let mut v: Vec<Atom> = self.iter().cloned().collect();
        v.sort();
        v
    }

    /// Rebuilds the arena, dropping tombstones while preserving insertion
    /// order. Ids are *not* stable across compaction.
    pub fn compact(&mut self) {
        let atoms: Vec<Atom> = self.iter().cloned().collect();
        let no_auto_compact = self.no_auto_compact;
        let compactions = self.compactions;
        *self = atoms.into_iter().collect();
        self.no_auto_compact = no_auto_compact;
        self.compactions = compactions;
    }

    /// Number of arena slots, live atoms plus tombstones — the set's
    /// real memory footprint, which auto-compaction keeps within a
    /// constant factor of [`AtomSet::len`].
    pub fn arena_len(&self) -> usize {
        self.slots.len()
    }

    /// Number of live non-empty positional postings — a structural gauge
    /// of index size, reported through `ChaseStats`.
    pub fn index_postings(&self) -> usize {
        self.postings
    }

    /// Exact number of atoms [`Self::matching_ids`] would return for a
    /// `bound` of **at most one** determined position — two O(1) index
    /// lookups instead of materialising the id list. With two or more
    /// determined positions the count requires the actual intersection;
    /// use [`Self::matching_ids`] there.
    pub fn matching_count(&self, pred: PredId, arity: usize, bound: &[(usize, Term)]) -> usize {
        debug_assert!(
            bound.len() <= 1,
            "counts for >1 positions need the intersection"
        );
        let Some(sig) = self.by_sig.get(&(pred, arity as u32)) else {
            return 0;
        };
        match bound.first() {
            None => sig.ids.len(),
            Some(&(pos, t)) => sig
                .positions
                .get(pos)
                .and_then(|m| m.get(&t))
                .map_or(0, Vec::len),
        }
    }

    /// Collects into `out` the ids of every atom with predicate `pred`,
    /// arity `arity`, and term `t` at position `p` for each `(p, t)` in
    /// `bound` — the *exact* candidate set for a pattern atom whose
    /// determined positions are `bound`, in insertion (ascending id)
    /// order.
    ///
    /// `bound` may be empty (all atoms of the signature match) and may
    /// bind the same position more than once (a repeated-variable pattern
    /// like `r(x, x)`). With ≥ 2 bound positions the smallest posting
    /// drives and the rest filter it, each either marked into `scratch`
    /// (then sparsely cleared) for O(1) membership tests or binary
    /// searched, whichever is cheaper. `out` is cleared first; `scratch`
    /// is left empty again, so both can be reused across calls without
    /// reallocation.
    pub fn matching_ids(
        &self,
        pred: PredId,
        arity: usize,
        bound: &[(usize, Term)],
        scratch: &mut IdBits,
        out: &mut Vec<AtomId>,
    ) {
        out.clear();
        let Some(sig) = self.by_sig.get(&(pred, arity as u32)) else {
            return;
        };
        if bound.is_empty() {
            out.extend(sig.ids.iter().copied());
            return;
        }
        let mut posts: Vec<&[u32]> = Vec::with_capacity(bound.len());
        for &(pos, t) in bound {
            let Some(posting) = sig.positions.get(pos).and_then(|m| m.get(&t)) else {
                return;
            };
            posts.push(posting.as_slice());
        }
        posts.sort_by_key(|p| p.len());
        let (driver, rest) = posts.split_first().expect("bound is non-empty");
        out.extend(driver.iter().map(|&i| AtomId(i)));
        for posting in rest {
            if out.is_empty() {
                return;
            }
            // Filtering `out` against this posting costs either
            // O(|posting|) bitset marks + O(|out|) probes + a sparse
            // clear, or O(|out|·log|posting|) binary searches; pick the
            // cheaper side.
            if posting.len() <= out.len() * 8 {
                scratch.ensure(self.slots.len());
                for &i in *posting {
                    scratch.insert(i);
                }
                out.retain(|id| scratch.contains(id.0));
                scratch.clear_ids(posting.iter().copied());
            } else {
                out.retain(|id| posting.binary_search(&id.0).is_ok());
            }
        }
    }

    /// Convenience wrapper around [`AtomSet::matching_ids`] that clones
    /// the matching atoms out with a fresh scratch. Intended for tests
    /// and cold paths; hot paths should reuse a scratch + id buffer.
    pub fn matching_atoms(&self, pred: PredId, arity: usize, bound: &[(usize, Term)]) -> Vec<Atom> {
        let mut scratch = IdBits::new();
        let mut ids = Vec::new();
        self.matching_ids(pred, arity, bound, &mut scratch, &mut ids);
        ids.iter()
            .map(|&id| self.get(id).expect("matching_ids returned dead id").clone())
            .collect()
    }
}

impl PartialEq for AtomSet {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().all(|a| other.contains(a))
    }
}

impl Eq for AtomSet {}

impl FromIterator<Atom> for AtomSet {
    fn from_iter<I: IntoIterator<Item = Atom>>(iter: I) -> Self {
        let mut s = AtomSet::new();
        for a in iter {
            s.insert(a);
        }
        s
    }
}

impl Extend<Atom> for AtomSet {
    fn extend<I: IntoIterator<Item = Atom>>(&mut self, iter: I) {
        for a in iter {
            self.insert(a);
        }
    }
}

impl<'a> IntoIterator for &'a AtomSet {
    type Item = &'a Atom;
    type IntoIter = Box<dyn Iterator<Item = &'a Atom> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

impl fmt::Debug for AtomSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::VarId;

    fn p(i: u32) -> PredId {
        PredId::from_raw(i)
    }

    fn v(i: u32) -> Term {
        Term::Var(VarId::from_raw(i))
    }

    fn atom(pr: u32, args: &[Term]) -> Atom {
        Atom::new(p(pr), args.to_vec())
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = AtomSet::new();
        let a = atom(0, &[v(1), v(2)]);
        assert!(s.insert(a.clone()));
        assert!(!s.insert(a.clone()), "duplicate insert is a no-op");
        assert!(s.contains(&a));
        assert_eq!(s.len(), 1);
        assert!(s.remove(&a));
        assert!(!s.remove(&a));
        assert!(s.is_empty());
        assert!(!s.mentions(v(1)));
    }

    #[test]
    fn indexes_track_membership() {
        let mut s = AtomSet::new();
        s.insert(atom(0, &[v(1), v(2)]));
        s.insert(atom(0, &[v(2), v(3)]));
        s.insert(atom(1, &[v(1)]));
        assert_eq!(s.pred_count(p(0)), 2);
        assert_eq!(s.pred_count(p(1)), 1);
        assert_eq!(s.pred_count(p(9)), 0);
        assert_eq!(s.term_count(v(2)), 2);
        assert_eq!(s.with_term(v(1)).count(), 2);

        s.remove(&atom(0, &[v(2), v(3)]));
        assert_eq!(s.term_count(v(2)), 1);
        assert!(!s.mentions(v(3)));
    }

    #[test]
    fn iteration_is_insertion_ordered() {
        let mut s = AtomSet::new();
        let a1 = atom(1, &[v(9)]);
        let a2 = atom(0, &[v(1)]);
        let a3 = atom(2, &[v(5)]);
        s.insert(a1.clone());
        s.insert(a2.clone());
        s.insert(a3.clone());
        let order: Vec<&Atom> = s.iter().collect();
        assert_eq!(order, vec![&a1, &a2, &a3]);
    }

    #[test]
    fn set_equality_ignores_order() {
        let mut s1 = AtomSet::new();
        let mut s2 = AtomSet::new();
        s1.insert(atom(0, &[v(1)]));
        s1.insert(atom(0, &[v(2)]));
        s2.insert(atom(0, &[v(2)]));
        s2.insert(atom(0, &[v(1)]));
        assert_eq!(s1, s2);
        s2.remove(&atom(0, &[v(1)]));
        assert_ne!(s1, s2);
    }

    #[test]
    fn induced_subset() {
        let mut s = AtomSet::new();
        s.insert(atom(0, &[v(1), v(2)]));
        s.insert(atom(0, &[v(2), v(3)]));
        let keep: BTreeSet<Term> = [v(1), v(2)].into_iter().collect();
        let ind = s.induced_by_terms(&keep);
        assert_eq!(ind.len(), 1);
        assert!(ind.contains(&atom(0, &[v(1), v(2)])));
    }

    #[test]
    fn remove_term_drops_all_occurrences() {
        let mut s = AtomSet::new();
        s.insert(atom(0, &[v(1), v(2)]));
        s.insert(atom(0, &[v(2), v(3)]));
        s.insert(atom(1, &[v(3)]));
        assert_eq!(s.remove_term(v(2)), 2);
        assert_eq!(s.len(), 1);
        assert!(s.contains(&atom(1, &[v(3)])));
    }

    #[test]
    fn subset_and_union() {
        let small: AtomSet = [atom(0, &[v(1)])].into_iter().collect();
        let mut big: AtomSet = [atom(0, &[v(1)]), atom(0, &[v(2)])].into_iter().collect();
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        assert_eq!(big.union_with(&small), 0);
        let other: AtomSet = [atom(1, &[v(7)])].into_iter().collect();
        assert_eq!(big.union_with(&other), 1);
        assert_eq!(big.len(), 3);
    }

    #[test]
    fn compact_preserves_contents_and_order() {
        let mut s = AtomSet::new();
        for i in 0..10 {
            s.insert(atom(0, &[v(i)]));
        }
        for i in (0..10).step_by(2) {
            s.remove(&atom(0, &[v(i)]));
        }
        let before: Vec<Atom> = s.iter().cloned().collect();
        s.compact();
        let after: Vec<Atom> = s.iter().cloned().collect();
        assert_eq!(before, after);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn retraction_churn_keeps_arena_bounded() {
        let mut s = AtomSet::new();
        // A small persistent core plus a long insert/retract churn — the
        // access pattern of a core chase folding fresh nulls away.
        for i in 0..8 {
            s.insert(atom(1, &[v(1_000_000 + i)]));
        }
        for i in 0..10_000u32 {
            let a = atom(0, &[v(i), v(i + 1)]);
            s.insert(a.clone());
            s.remove(&a);
            assert!(
                s.arena_len() <= 3 * s.len() + COMPACT_MIN_SLOTS,
                "arena grew unboundedly: {} slots for {} live atoms",
                s.arena_len(),
                s.len()
            );
        }
        assert_eq!(s.len(), 8);
        // Auto-compaction preserved the insertion order of survivors.
        let order: Vec<&Atom> = s.iter().collect();
        for (i, a) in order.iter().enumerate() {
            assert_eq!(**a, atom(1, &[v(1_000_000 + i as u32)]));
        }
    }

    /// Reference semantics for `matching_ids`: scan everything, filter.
    fn brute_matching(s: &AtomSet, pr: PredId, arity: usize, bound: &[(usize, Term)]) -> Vec<Atom> {
        s.iter()
            .filter(|a| {
                a.pred() == pr
                    && a.arity() == arity
                    && bound.iter().all(|&(pos, t)| a.args()[pos] == t)
            })
            .cloned()
            .collect()
    }

    #[test]
    fn matching_ids_equals_brute_force_scan() {
        // A deterministic pseudo-random mix of arities, predicates and
        // shared terms, with interleaved removals, checked against the
        // naive scan for every bound-position combination.
        let mut s = AtomSet::new();
        let mut seed = 0x9e37_79b9_u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            (seed >> 33) as u32
        };
        let mut atoms = Vec::new();
        for _ in 0..300 {
            let pr = next() % 4;
            let arity = 1 + (next() % 3) as usize;
            let args: Vec<Term> = (0..arity).map(|_| v(next() % 12)).collect();
            let a = atom(pr, &args);
            s.insert(a.clone());
            atoms.push(a);
        }
        for (i, a) in atoms.iter().enumerate() {
            if i % 3 == 0 {
                s.remove(a);
            }
        }
        let mut scratch = IdBits::new();
        let mut ids = Vec::new();
        for pr in 0..4 {
            for arity in 1..=3usize {
                let mut bounds: Vec<Vec<(usize, Term)>> = vec![vec![]];
                for pos in 0..arity {
                    for t in 0..12 {
                        bounds.push(vec![(pos, v(t))]);
                        for pos2 in pos + 1..arity {
                            bounds.push(vec![(pos, v(t)), (pos2, v((t + 5) % 12))]);
                        }
                    }
                }
                for bound in &bounds {
                    s.matching_ids(p(pr), arity, bound, &mut scratch, &mut ids);
                    let got: Vec<Atom> = ids
                        .iter()
                        .map(|&id| s.get(id).expect("live id").clone())
                        .collect();
                    let want = brute_matching(&s, p(pr), arity, bound);
                    assert_eq!(got, want, "pred {pr} arity {arity} bound {bound:?}");
                    assert_eq!(got, s.matching_atoms(p(pr), arity, bound));
                }
            }
        }
    }

    #[test]
    fn matching_ids_repeated_position_and_missing() {
        let mut s = AtomSet::new();
        s.insert(atom(0, &[v(1), v(1)]));
        s.insert(atom(0, &[v(1), v(2)]));
        // The same position bound twice (consistently) is just a filter.
        let both = s.matching_atoms(p(0), 2, &[(0, v(1)), (1, v(1))]);
        assert_eq!(both, vec![atom(0, &[v(1), v(1)])]);
        // Unknown signature, term, or position ⇒ empty, not a panic.
        assert!(s.matching_atoms(p(7), 2, &[]).is_empty());
        assert!(s.matching_atoms(p(0), 3, &[]).is_empty());
        assert!(s.matching_atoms(p(0), 2, &[(1, v(9))]).is_empty());
    }

    #[test]
    fn postings_gauge_tracks_removals_and_compaction() {
        let mut s = AtomSet::new();
        assert_eq!(s.index_postings(), 0);
        s.insert(atom(0, &[v(1), v(2)]));
        // Two positions, one distinct term each ⇒ 2 postings.
        assert_eq!(s.index_postings(), 2);
        s.insert(atom(0, &[v(1), v(3)]));
        // Position 0 shares the v(1) posting; position 1 gains one.
        assert_eq!(s.index_postings(), 3);
        s.remove(&atom(0, &[v(1), v(3)]));
        assert_eq!(s.index_postings(), 2);
        s.compact();
        assert_eq!(s.index_postings(), 2);
        s.remove(&atom(0, &[v(1), v(2)]));
        assert_eq!(s.index_postings(), 0);
    }

    #[test]
    fn matching_survives_auto_compaction() {
        let mut s = AtomSet::new();
        for i in 0..200u32 {
            s.insert(atom(0, &[v(i % 5), v(i)]));
        }
        for i in 0..180u32 {
            s.remove(&atom(0, &[v(i % 5), v(i)]));
        }
        assert!(s.arena_len() < 200, "auto-compaction should have fired");
        let got = s.matching_atoms(p(0), 2, &[(0, v(2))]);
        let want = brute_matching(&s, p(0), 2, &[(0, v(2))]);
        assert_eq!(got, want);
        assert!(!want.is_empty());
    }

    #[test]
    fn auto_compact_flag_disables_and_survives() {
        let mut s = AtomSet::new();
        s.set_auto_compact(false);
        for i in 0..200u32 {
            let a = atom(0, &[v(i)]);
            s.insert(a.clone());
            s.remove(&a);
        }
        assert_eq!(s.arena_len(), 200, "auto-compaction must stay off");
        // The flag survives clone, explicit compaction and apply.
        let mut c = s.clone();
        c.compact();
        assert_eq!(c.arena_len(), 0);
        for i in 0..200u32 {
            let a = atom(0, &[v(i)]);
            c.insert(a.clone());
            c.remove(&a);
        }
        assert_eq!(c.arena_len(), 200);
        let applied = c.apply(&Substitution::new());
        let mut a2 = applied;
        for i in 0..200u32 {
            let a = atom(1, &[v(i)]);
            a2.insert(a.clone());
            a2.remove(&a);
        }
        assert_eq!(a2.arena_len(), 200);
    }

    #[test]
    fn terms_vars_constants() {
        let mut s = AtomSet::new();
        let c = Term::Const(crate::term::ConstId::from_raw(0));
        s.insert(atom(0, &[c, v(1)]));
        assert_eq!(s.terms().len(), 2);
        assert_eq!(s.vars().len(), 1);
        assert_eq!(s.constants().len(), 1);
    }
}
