//! Atomsets (instances): indexed, deterministic sets of atoms.
//!
//! An [`AtomSet`] corresponds to the paper's notion of a (finite) atomset /
//! instance. It keeps two secondary indexes — by predicate and by term —
//! so the homomorphism engine can enumerate candidate atoms without a full
//! scan, and iterates in insertion order so every printout and derived
//! artifact is deterministic.

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use crate::atom::Atom;
use crate::substitution::Substitution;
use crate::term::{ConstId, Term, VarId};
use crate::vocab::PredId;

/// A handle to an atom inside one [`AtomSet`].
///
/// Ids are allocated in insertion order, so sorting by `AtomId` recovers
/// insertion order even after removals. They are **not** stable across
/// mutations: a removal may auto-compact the arena (see
/// [`AtomSet::compact`]), which reassigns ids — hold the [`Atom`]
/// itself, not its id, across anything that removes atoms.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct AtomId(u32);

impl AtomId {
    /// The raw index of this atom id.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

/// A finite set of atoms with predicate and term-occurrence indexes.
#[derive(Clone, Default)]
pub struct AtomSet {
    /// Arena of atoms; `None` marks a removed (tombstoned) slot.
    slots: Vec<Option<Atom>>,
    /// Exact-match lookup (also the deduplication map).
    lookup: HashMap<Atom, AtomId>,
    /// Ids of live atoms per predicate, in insertion order.
    by_pred: HashMap<PredId, BTreeSet<AtomId>>,
    /// Ids of live atoms per occurring term, in insertion order.
    by_term: HashMap<Term, BTreeSet<AtomId>>,
    /// Number of live atoms.
    live: usize,
}

/// Arenas smaller than this never auto-compact: a handful of dead slots
/// is cheaper than the rebuild.
const COMPACT_MIN_SLOTS: usize = 64;

impl AtomSet {
    /// Creates an empty atomset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of atoms in the set.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Inserts an atom; returns `true` if it was not already present.
    pub fn insert(&mut self, atom: Atom) -> bool {
        if self.lookup.contains_key(&atom) {
            return false;
        }
        let id = AtomId(u32::try_from(self.slots.len()).expect("too many atoms"));
        for t in atom.terms() {
            self.by_term.entry(t).or_default().insert(id);
        }
        self.by_pred.entry(atom.pred()).or_default().insert(id);
        self.lookup.insert(atom.clone(), id);
        self.slots.push(Some(atom));
        self.live += 1;
        true
    }

    /// Removes an atom; returns `true` if it was present.
    ///
    /// Removal may auto-compact the arena (see [`AtomSet::compact`]),
    /// invalidating previously obtained [`AtomId`]s.
    pub fn remove(&mut self, atom: &Atom) -> bool {
        let Some(id) = self.lookup.remove(atom) else {
            return false;
        };
        let stored = self.slots[id.0 as usize]
            .take()
            .expect("lookup/slot desync");
        for t in stored.terms() {
            if let Some(ids) = self.by_term.get_mut(&t) {
                ids.remove(&id);
                if ids.is_empty() {
                    self.by_term.remove(&t);
                }
            }
        }
        if let Some(ids) = self.by_pred.get_mut(&stored.pred()) {
            ids.remove(&id);
            if ids.is_empty() {
                self.by_pred.remove(&stored.pred());
            }
        }
        self.live -= 1;
        self.maybe_compact();
        true
    }

    /// Compacts once tombstones outnumber live atoms two-to-one. The
    /// rebuild is O(live), so charging it to the ≥ 2·live removals since
    /// the last compaction keeps removal amortized O(1) while bounding
    /// the arena at 3·live + [`COMPACT_MIN_SLOTS`] slots — without this,
    /// a retraction-heavy core chase grows `slots` monotonically even
    /// when the live instance stays small.
    fn maybe_compact(&mut self) {
        let dead = self.slots.len() - self.live;
        if self.slots.len() >= COMPACT_MIN_SLOTS && dead > 2 * self.live {
            self.compact();
        }
    }

    /// Does the set contain the given atom?
    pub fn contains(&self, atom: &Atom) -> bool {
        self.lookup.contains_key(atom)
    }

    /// Returns the id of an atom if present.
    pub fn id_of(&self, atom: &Atom) -> Option<AtomId> {
        self.lookup.get(atom).copied()
    }

    /// Returns the atom behind an id, if still live.
    pub fn get(&self, id: AtomId) -> Option<&Atom> {
        self.slots.get(id.0 as usize).and_then(Option::as_ref)
    }

    /// Iterates over the atoms in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Atom> {
        self.slots.iter().filter_map(Option::as_ref)
    }

    /// Iterates over `(id, atom)` pairs in insertion order.
    pub fn iter_with_ids(&self) -> impl Iterator<Item = (AtomId, &Atom)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|a| (AtomId(i as u32), a)))
    }

    /// Iterates over atoms with the given predicate, in insertion order.
    pub fn with_pred(&self, pred: PredId) -> impl Iterator<Item = &Atom> {
        self.by_pred
            .get(&pred)
            .into_iter()
            .flat_map(|ids| ids.iter())
            .map(|&id| self.get(id).expect("index/slot desync"))
    }

    /// Number of atoms with the given predicate.
    pub fn pred_count(&self, pred: PredId) -> usize {
        self.by_pred.get(&pred).map_or(0, BTreeSet::len)
    }

    /// Iterates over atoms mentioning the given term, in insertion order.
    pub fn with_term(&self, term: Term) -> impl Iterator<Item = &Atom> {
        self.by_term
            .get(&term)
            .into_iter()
            .flat_map(|ids| ids.iter())
            .map(|&id| self.get(id).expect("index/slot desync"))
    }

    /// Number of atoms mentioning the given term.
    pub fn term_count(&self, term: Term) -> usize {
        self.by_term.get(&term).map_or(0, BTreeSet::len)
    }

    /// Does any atom mention the given term?
    pub fn mentions(&self, term: Term) -> bool {
        self.by_term.contains_key(&term)
    }

    /// The set of terms occurring in the atomset (`terms(A)`), sorted.
    pub fn terms(&self) -> BTreeSet<Term> {
        self.by_term.keys().copied().collect()
    }

    /// The set of variables occurring in the atomset (`vars(A)`), sorted.
    pub fn vars(&self) -> BTreeSet<VarId> {
        self.by_term.keys().filter_map(|t| t.as_var()).collect()
    }

    /// The set of constants occurring in the atomset, sorted.
    pub fn constants(&self) -> BTreeSet<ConstId> {
        self.by_term.keys().filter_map(|t| t.as_const()).collect()
    }

    /// The set of predicates with at least one atom, sorted.
    pub fn preds(&self) -> BTreeSet<PredId> {
        self.by_pred.keys().copied().collect()
    }

    /// Applies a substitution, producing a new atomset `σ(A)`.
    pub fn apply(&self, sigma: &Substitution) -> AtomSet {
        self.iter().map(|a| sigma.apply_atom(a)).collect()
    }

    /// Is `self ⊆ other`?
    pub fn is_subset_of(&self, other: &AtomSet) -> bool {
        self.len() <= other.len() && self.iter().all(|a| other.contains(a))
    }

    /// The sub-atomset *induced* by a set of terms: atoms whose terms all
    /// belong to `keep`.
    pub fn induced_by_terms(&self, keep: &BTreeSet<Term>) -> AtomSet {
        self.iter()
            .filter(|a| a.terms().all(|t| keep.contains(&t)))
            .cloned()
            .collect()
    }

    /// Removes every atom mentioning the given term; returns how many were
    /// removed.
    pub fn remove_term(&mut self, term: Term) -> usize {
        let victims: Vec<Atom> = self.with_term(term).cloned().collect();
        for a in &victims {
            self.remove(a);
        }
        victims.len()
    }

    /// Inserts all atoms of `other`; returns how many were new.
    pub fn union_with(&mut self, other: &AtomSet) -> usize {
        let mut added = 0;
        for a in other.iter() {
            if self.insert(a.clone()) {
                added += 1;
            }
        }
        added
    }

    /// The atoms as a sorted vector (canonical form, independent of
    /// insertion order). Useful for hashing and set-level comparison.
    pub fn sorted_atoms(&self) -> Vec<Atom> {
        let mut v: Vec<Atom> = self.iter().cloned().collect();
        v.sort();
        v
    }

    /// Rebuilds the arena, dropping tombstones while preserving insertion
    /// order. Ids are *not* stable across compaction.
    pub fn compact(&mut self) {
        let atoms: Vec<Atom> = self.iter().cloned().collect();
        *self = atoms.into_iter().collect();
    }

    /// Number of arena slots, live atoms plus tombstones — the set's
    /// real memory footprint, which auto-compaction keeps within a
    /// constant factor of [`AtomSet::len`].
    pub fn arena_len(&self) -> usize {
        self.slots.len()
    }
}

impl PartialEq for AtomSet {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().all(|a| other.contains(a))
    }
}

impl Eq for AtomSet {}

impl FromIterator<Atom> for AtomSet {
    fn from_iter<I: IntoIterator<Item = Atom>>(iter: I) -> Self {
        let mut s = AtomSet::new();
        for a in iter {
            s.insert(a);
        }
        s
    }
}

impl Extend<Atom> for AtomSet {
    fn extend<I: IntoIterator<Item = Atom>>(&mut self, iter: I) {
        for a in iter {
            self.insert(a);
        }
    }
}

impl<'a> IntoIterator for &'a AtomSet {
    type Item = &'a Atom;
    type IntoIter = Box<dyn Iterator<Item = &'a Atom> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

impl fmt::Debug for AtomSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::VarId;

    fn p(i: u32) -> PredId {
        PredId::from_raw(i)
    }

    fn v(i: u32) -> Term {
        Term::Var(VarId::from_raw(i))
    }

    fn atom(pr: u32, args: &[Term]) -> Atom {
        Atom::new(p(pr), args.to_vec())
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = AtomSet::new();
        let a = atom(0, &[v(1), v(2)]);
        assert!(s.insert(a.clone()));
        assert!(!s.insert(a.clone()), "duplicate insert is a no-op");
        assert!(s.contains(&a));
        assert_eq!(s.len(), 1);
        assert!(s.remove(&a));
        assert!(!s.remove(&a));
        assert!(s.is_empty());
        assert!(!s.mentions(v(1)));
    }

    #[test]
    fn indexes_track_membership() {
        let mut s = AtomSet::new();
        s.insert(atom(0, &[v(1), v(2)]));
        s.insert(atom(0, &[v(2), v(3)]));
        s.insert(atom(1, &[v(1)]));
        assert_eq!(s.pred_count(p(0)), 2);
        assert_eq!(s.pred_count(p(1)), 1);
        assert_eq!(s.pred_count(p(9)), 0);
        assert_eq!(s.term_count(v(2)), 2);
        assert_eq!(s.with_term(v(1)).count(), 2);

        s.remove(&atom(0, &[v(2), v(3)]));
        assert_eq!(s.term_count(v(2)), 1);
        assert!(!s.mentions(v(3)));
    }

    #[test]
    fn iteration_is_insertion_ordered() {
        let mut s = AtomSet::new();
        let a1 = atom(1, &[v(9)]);
        let a2 = atom(0, &[v(1)]);
        let a3 = atom(2, &[v(5)]);
        s.insert(a1.clone());
        s.insert(a2.clone());
        s.insert(a3.clone());
        let order: Vec<&Atom> = s.iter().collect();
        assert_eq!(order, vec![&a1, &a2, &a3]);
    }

    #[test]
    fn set_equality_ignores_order() {
        let mut s1 = AtomSet::new();
        let mut s2 = AtomSet::new();
        s1.insert(atom(0, &[v(1)]));
        s1.insert(atom(0, &[v(2)]));
        s2.insert(atom(0, &[v(2)]));
        s2.insert(atom(0, &[v(1)]));
        assert_eq!(s1, s2);
        s2.remove(&atom(0, &[v(1)]));
        assert_ne!(s1, s2);
    }

    #[test]
    fn induced_subset() {
        let mut s = AtomSet::new();
        s.insert(atom(0, &[v(1), v(2)]));
        s.insert(atom(0, &[v(2), v(3)]));
        let keep: BTreeSet<Term> = [v(1), v(2)].into_iter().collect();
        let ind = s.induced_by_terms(&keep);
        assert_eq!(ind.len(), 1);
        assert!(ind.contains(&atom(0, &[v(1), v(2)])));
    }

    #[test]
    fn remove_term_drops_all_occurrences() {
        let mut s = AtomSet::new();
        s.insert(atom(0, &[v(1), v(2)]));
        s.insert(atom(0, &[v(2), v(3)]));
        s.insert(atom(1, &[v(3)]));
        assert_eq!(s.remove_term(v(2)), 2);
        assert_eq!(s.len(), 1);
        assert!(s.contains(&atom(1, &[v(3)])));
    }

    #[test]
    fn subset_and_union() {
        let small: AtomSet = [atom(0, &[v(1)])].into_iter().collect();
        let mut big: AtomSet = [atom(0, &[v(1)]), atom(0, &[v(2)])].into_iter().collect();
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        assert_eq!(big.union_with(&small), 0);
        let other: AtomSet = [atom(1, &[v(7)])].into_iter().collect();
        assert_eq!(big.union_with(&other), 1);
        assert_eq!(big.len(), 3);
    }

    #[test]
    fn compact_preserves_contents_and_order() {
        let mut s = AtomSet::new();
        for i in 0..10 {
            s.insert(atom(0, &[v(i)]));
        }
        for i in (0..10).step_by(2) {
            s.remove(&atom(0, &[v(i)]));
        }
        let before: Vec<Atom> = s.iter().cloned().collect();
        s.compact();
        let after: Vec<Atom> = s.iter().cloned().collect();
        assert_eq!(before, after);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn retraction_churn_keeps_arena_bounded() {
        let mut s = AtomSet::new();
        // A small persistent core plus a long insert/retract churn — the
        // access pattern of a core chase folding fresh nulls away.
        for i in 0..8 {
            s.insert(atom(1, &[v(1_000_000 + i)]));
        }
        for i in 0..10_000u32 {
            let a = atom(0, &[v(i), v(i + 1)]);
            s.insert(a.clone());
            s.remove(&a);
            assert!(
                s.arena_len() <= 3 * s.len() + COMPACT_MIN_SLOTS,
                "arena grew unboundedly: {} slots for {} live atoms",
                s.arena_len(),
                s.len()
            );
        }
        assert_eq!(s.len(), 8);
        // Auto-compaction preserved the insertion order of survivors.
        let order: Vec<&Atom> = s.iter().collect();
        for (i, a) in order.iter().enumerate() {
            assert_eq!(**a, atom(1, &[v(1_000_000 + i as u32)]));
        }
    }

    #[test]
    fn terms_vars_constants() {
        let mut s = AtomSet::new();
        let c = Term::Const(crate::term::ConstId::from_raw(0));
        s.insert(atom(0, &[c, v(1)]));
        assert_eq!(s.terms().len(), 2);
        assert_eq!(s.vars().len(), 1);
        assert_eq!(s.constants().len(), 1);
    }
}
