//! Substitutions with the paper's `σ⁺` total-extension semantics.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::atom::Atom;
use crate::atomset::AtomSet;
use crate::term::{Term, VarId};

/// A substitution: a finite map from variables to terms.
///
/// Application uses the paper's `σ⁺` convention — a variable outside the
/// domain is mapped to itself — so every substitution acts as a total
/// function on terms.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Substitution {
    map: BTreeMap<VarId, Term>,
}

impl Substitution {
    /// The empty (identity) substitution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a substitution from `(variable, image)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (VarId, Term)>) -> Self {
        Substitution {
            map: pairs.into_iter().collect(),
        }
    }

    /// Binds `var ↦ term`. Returns the previous image, if any.
    pub fn bind(&mut self, var: VarId, term: Term) -> Option<Term> {
        self.map.insert(var, term)
    }

    /// Removes a binding.
    pub fn unbind(&mut self, var: VarId) -> Option<Term> {
        self.map.remove(&var)
    }

    /// The raw image of `var`, or `None` if unbound.
    pub fn get(&self, var: VarId) -> Option<Term> {
        self.map.get(&var).copied()
    }

    /// Number of explicit bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is this the empty substitution?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The explicit domain of the substitution, in variable order.
    pub fn domain(&self) -> impl Iterator<Item = VarId> + '_ {
        self.map.keys().copied()
    }

    /// Iterates over `(variable, image)` bindings in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, Term)> + '_ {
        self.map.iter().map(|(&v, &t)| (v, t))
    }

    /// Applies the substitution to a term (`σ⁺` semantics).
    pub fn apply_term(&self, term: Term) -> Term {
        match term {
            Term::Var(v) => self.map.get(&v).copied().unwrap_or(term),
            Term::Const(_) => term,
        }
    }

    /// Applies the substitution to an atom.
    pub fn apply_atom(&self, atom: &Atom) -> Atom {
        atom.map_terms(|t| self.apply_term(t))
    }

    /// Applies the substitution to an atomset, producing `σ(A)`.
    pub fn apply_set(&self, set: &AtomSet) -> AtomSet {
        set.apply(self)
    }

    /// Composition `other ∘ self`: first apply `self`, then `other`.
    ///
    /// Per the paper (Section 2) the result is a substitution of
    /// `dom(self) ∪ dom(other)` with `Y ↦ other⁺(self⁺(Y))`.
    pub fn then(&self, other: &Substitution) -> Substitution {
        let mut map = BTreeMap::new();
        for (&v, &t) in &self.map {
            map.insert(v, other.apply_term(t));
        }
        for (&v, &t) in &other.map {
            map.entry(v).or_insert(t);
        }
        // Normalize: drop explicit identity bindings so that equality of
        // substitutions is equality as functions.
        map.retain(|&v, t| *t != Term::Var(v));
        Substitution { map }
    }

    /// Are the two substitutions compatible (agree on shared variables)?
    pub fn compatible(&self, other: &Substitution) -> bool {
        for (&v, &t) in &self.map {
            if let Some(&u) = other.map.get(&v) {
                if u != t {
                    return false;
                }
            }
        }
        true
    }

    /// Merges two compatible substitutions. Returns `None` on conflict.
    pub fn merge(&self, other: &Substitution) -> Option<Substitution> {
        if !self.compatible(other) {
            return None;
        }
        let mut map = self.map.clone();
        for (&v, &t) in &other.map {
            map.insert(v, t);
        }
        Some(Substitution { map })
    }

    /// Restricts the substitution to the given variables.
    pub fn restrict(&self, vars: &BTreeSet<VarId>) -> Substitution {
        Substitution {
            map: self
                .map
                .iter()
                .filter(|(v, _)| vars.contains(v))
                .map(|(&v, &t)| (v, t))
                .collect(),
        }
    }

    /// Drops explicit identity bindings (`X ↦ X`).
    pub fn normalized(&self) -> Substitution {
        Substitution {
            map: self
                .map
                .iter()
                .filter(|&(&v, &t)| t != Term::Var(v))
                .map(|(&v, &t)| (v, t))
                .collect(),
        }
    }

    /// Does the substitution act as the identity on every term of `terms`?
    pub fn is_identity_on(&self, terms: impl IntoIterator<Item = Term>) -> bool {
        terms.into_iter().all(|t| self.apply_term(t) == t)
    }

    /// Is this substitution an endomorphism of `a`, i.e. `σ(a) ⊆ a`?
    pub fn is_endomorphism_of(&self, a: &AtomSet) -> bool {
        a.iter().all(|atom| a.contains(&self.apply_atom(atom)))
    }

    /// Is this substitution a *retraction* of `a`?
    ///
    /// Per the paper: an endomorphism whose restriction to the terms of its
    /// image `σ(a)` is the identity.
    pub fn is_retraction_of(&self, a: &AtomSet) -> bool {
        if !self.is_endomorphism_of(a) {
            return false;
        }
        let image = self.apply_set(a);
        self.is_identity_on(image.terms())
    }

    /// Is this substitution a homomorphism from `from` to `to`, i.e.
    /// `σ(from) ⊆ to`?
    pub fn is_homomorphism(&self, from: &AtomSet, to: &AtomSet) -> bool {
        from.iter().all(|atom| to.contains(&self.apply_atom(atom)))
    }

    /// Attempts to invert the substitution (must be injective on its domain
    /// and map variables to variables).
    pub fn inverse(&self) -> Option<Substitution> {
        let mut map = BTreeMap::new();
        for (&v, &t) in &self.map {
            let Term::Var(w) = t else { return None };
            if map.insert(w, Term::Var(v)).is_some() {
                return None;
            }
        }
        Some(Substitution { map })
    }
}

impl FromIterator<(VarId, Term)> for Substitution {
    fn from_iter<I: IntoIterator<Item = (VarId, Term)>>(iter: I) -> Self {
        Substitution::from_pairs(iter)
    }
}

impl fmt::Debug for Substitution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (v, t)) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:?}↦{t:?}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::PredId;

    fn v(i: u32) -> VarId {
        VarId::from_raw(i)
    }

    fn tv(i: u32) -> Term {
        Term::Var(v(i))
    }

    fn atom(args: &[Term]) -> Atom {
        Atom::new(PredId::from_raw(0), args.to_vec())
    }

    #[test]
    fn apply_uses_sigma_plus_semantics() {
        let s = Substitution::from_pairs([(v(0), tv(1))]);
        assert_eq!(s.apply_term(tv(0)), tv(1));
        assert_eq!(s.apply_term(tv(7)), tv(7), "unbound vars are fixed");
    }

    #[test]
    fn composition_order() {
        // self: 0↦1, other: 1↦2  ⇒  then: 0↦2, 1↦2
        let s = Substitution::from_pairs([(v(0), tv(1))]);
        let t = Substitution::from_pairs([(v(1), tv(2))]);
        let c = s.then(&t);
        assert_eq!(c.apply_term(tv(0)), tv(2));
        assert_eq!(c.apply_term(tv(1)), tv(2));
    }

    #[test]
    fn composition_is_function_composition() {
        // Property: (s.then(t)).apply == t.apply ∘ s.apply on a sample.
        let s = Substitution::from_pairs([(v(0), tv(3)), (v(1), tv(0))]);
        let t = Substitution::from_pairs([(v(3), tv(5)), (v(0), tv(1))]);
        let c = s.then(&t);
        for i in 0..8 {
            assert_eq!(c.apply_term(tv(i)), t.apply_term(s.apply_term(tv(i))));
        }
    }

    #[test]
    fn compatibility_and_merge() {
        let s = Substitution::from_pairs([(v(0), tv(1))]);
        let t = Substitution::from_pairs([(v(0), tv(1)), (v(2), tv(3))]);
        let u = Substitution::from_pairs([(v(0), tv(9))]);
        assert!(s.compatible(&t));
        assert!(!s.compatible(&u));
        let m = s.merge(&t).unwrap();
        assert_eq!(m.get(v(2)), Some(tv(3)));
        assert!(s.merge(&u).is_none());
    }

    #[test]
    fn retraction_detection() {
        // a: {p(0,1), p(1,1)}; σ: 0↦1 is a retraction (image {p(1,1)}).
        let a: AtomSet = [atom(&[tv(0), tv(1)]), atom(&[tv(1), tv(1)])]
            .into_iter()
            .collect();
        let fold = Substitution::from_pairs([(v(0), tv(1))]);
        assert!(fold.is_endomorphism_of(&a));
        assert!(fold.is_retraction_of(&a));

        // σ': 1↦0 is NOT an endomorphism (p(0,0) missing).
        let bad = Substitution::from_pairs([(v(1), tv(0))]);
        assert!(!bad.is_endomorphism_of(&a));

        // A non-idempotent endomorphism is not a retraction:
        // b: {p(0,1), p(1,2), p(2,2)}; σ: 0↦1,1↦2 moves image term 1.
        let b: AtomSet = [
            atom(&[tv(0), tv(1)]),
            atom(&[tv(1), tv(2)]),
            atom(&[tv(2), tv(2)]),
        ]
        .into_iter()
        .collect();
        let shift = Substitution::from_pairs([(v(0), tv(1)), (v(1), tv(2))]);
        assert!(shift.is_endomorphism_of(&b));
        assert!(!shift.is_retraction_of(&b));
    }

    #[test]
    fn inverse_of_renaming() {
        let s = Substitution::from_pairs([(v(0), tv(5)), (v(1), tv(6))]);
        let inv = s.inverse().unwrap();
        assert_eq!(inv.apply_term(tv(5)), tv(0));
        assert_eq!(inv.apply_term(tv(6)), tv(1));
        let non_injective = Substitution::from_pairs([(v(0), tv(5)), (v(1), tv(5))]);
        assert!(non_injective.inverse().is_none());
    }

    #[test]
    fn normalized_drops_identity_bindings() {
        let s = Substitution::from_pairs([(v(0), tv(0)), (v(1), tv(2))]);
        let n = s.normalized();
        assert_eq!(n.len(), 1);
        assert_eq!(n.get(v(1)), Some(tv(2)));
    }

    #[test]
    fn homomorphism_check() {
        let from: AtomSet = [atom(&[tv(0), tv(1)])].into_iter().collect();
        let to: AtomSet = [atom(&[tv(5), tv(5)])].into_iter().collect();
        let h = Substitution::from_pairs([(v(0), tv(5)), (v(1), tv(5))]);
        assert!(h.is_homomorphism(&from, &to));
        let miss = Substitution::from_pairs([(v(0), tv(5))]);
        assert!(!miss.is_homomorphism(&from, &to));
    }
}
