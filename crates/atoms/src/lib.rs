//! # chase-atoms
//!
//! The logical substrate of the `treechase` workspace: terms, atoms,
//! atomsets (instances) and substitutions, exactly as defined in Section 2
//! of *Bounded Treewidth and the Infinite Core Chase* (PODS 2023).
//!
//! Design notes (following the workspace coding guides):
//!
//! * **Interned symbols.** Predicate and constant names are interned in a
//!   [`Vocabulary`]; the hot data structures ([`Term`], [`Atom`],
//!   [`AtomSet`]) only carry compact `u32` ids, so equality and hashing in
//!   inner loops never touch strings.
//! * **Indexed atomsets.** [`AtomSet`] maintains per-predicate and per-term
//!   occurrence indexes so the homomorphism engine can enumerate candidate
//!   atoms without scanning. Iteration order is insertion order, which keeps
//!   every downstream printout deterministic.
//! * **Substitutions as partial maps.** A [`Substitution`] is a finite map
//!   from variables to terms with the paper's `σ⁺` semantics: variables
//!   outside the domain are fixed. Composition follows Definition `σ' ∘ σ`
//!   of the paper (Section 2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod atom;
mod atomset;
mod bitset;
mod display;
mod substitution;
mod term;
mod vocab;

pub use atom::Atom;
pub use atomset::{AtomId, AtomSet};
pub use bitset::IdBits;
pub use display::{DisplayWith, WithVocab};
pub use substitution::Substitution;
pub use term::{ConstId, Term, VarId};
pub use vocab::{PredDecl, PredId, Vocabulary};

/// Convenience constructor for a constant term.
pub fn cst(id: ConstId) -> Term {
    Term::Const(id)
}

/// Convenience constructor for a variable term.
pub fn var(id: VarId) -> Term {
    Term::Var(id)
}
