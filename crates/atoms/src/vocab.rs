//! Vocabulary: interning of predicates and constants, and fresh-variable
//! minting.
//!
//! A [`Vocabulary`] plays the role of the schema `S` of the paper plus the
//! bookkeeping needed to create *fresh* labeled nulls during the chase: the
//! paper's footnote 2 insists a fresh variable must never have occurred at
//! any previous computation step, so all variable creation is funnelled
//! through [`Vocabulary::fresh_var`].

use std::collections::HashMap;
use std::fmt;

use crate::term::{ConstId, VarId};

/// An interned predicate symbol.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PredId(u32);

impl PredId {
    /// Builds a predicate id from its raw index. Prefer
    /// [`Vocabulary::pred`].
    pub const fn from_raw(raw: u32) -> Self {
        PredId(raw)
    }

    /// The raw index of this predicate.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for PredId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A declared predicate: its name and arity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PredDecl {
    /// The textual name of the predicate.
    pub name: String,
    /// The arity `ar(p) ≥ 0`.
    pub arity: usize,
}

/// Interning table for predicates and constants, plus the fresh-variable
/// supply.
///
/// All symbol names live here; the hot data structures only carry ids.
/// Cloning a `Vocabulary` is cheap enough for snapshotting (it is all
/// `String`s and `u32`s) and the chase engine takes `&mut Vocabulary` only
/// when it needs to mint nulls.
#[derive(Clone, Debug, Default)]
pub struct Vocabulary {
    preds: Vec<PredDecl>,
    pred_by_name: HashMap<String, PredId>,
    consts: Vec<String>,
    const_by_name: HashMap<String, ConstId>,
    var_names: HashMap<VarId, String>,
    var_by_name: HashMap<String, VarId>,
    next_var: u32,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a predicate with the given name and arity, returning its id.
    ///
    /// # Panics
    /// Panics if the name was previously interned with a *different* arity;
    /// a schema assigns each symbol exactly one arity.
    pub fn pred(&mut self, name: &str, arity: usize) -> PredId {
        if let Some(&id) = self.pred_by_name.get(name) {
            let decl = &self.preds[id.0 as usize];
            assert_eq!(
                decl.arity, arity,
                "predicate `{name}` re-declared with arity {arity}, was {}",
                decl.arity
            );
            return id;
        }
        let id = PredId(u32::try_from(self.preds.len()).expect("too many predicates"));
        self.preds.push(PredDecl {
            name: name.to_owned(),
            arity,
        });
        self.pred_by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up a predicate by name without interning.
    pub fn lookup_pred(&self, name: &str) -> Option<PredId> {
        self.pred_by_name.get(name).copied()
    }

    /// Returns the declaration of a predicate.
    ///
    /// # Panics
    /// Panics if the id does not belong to this vocabulary.
    pub fn pred_decl(&self, id: PredId) -> &PredDecl {
        &self.preds[id.0 as usize]
    }

    /// The arity of a predicate.
    pub fn arity(&self, id: PredId) -> usize {
        self.pred_decl(id).arity
    }

    /// The name of a predicate.
    pub fn pred_name(&self, id: PredId) -> &str {
        &self.pred_decl(id).name
    }

    /// Iterates over all declared predicates in declaration order.
    pub fn preds(&self) -> impl Iterator<Item = (PredId, &PredDecl)> {
        self.preds
            .iter()
            .enumerate()
            .map(|(i, d)| (PredId(i as u32), d))
    }

    /// Interns a constant, returning its id.
    pub fn constant(&mut self, name: &str) -> ConstId {
        if let Some(&id) = self.const_by_name.get(name) {
            return id;
        }
        let id = ConstId::from_raw(u32::try_from(self.consts.len()).expect("too many constants"));
        self.consts.push(name.to_owned());
        self.const_by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up a constant by name without interning.
    pub fn lookup_constant(&self, name: &str) -> Option<ConstId> {
        self.const_by_name.get(name).copied()
    }

    /// The name of a constant, if it belongs to this vocabulary.
    pub fn const_name(&self, id: ConstId) -> Option<&str> {
        self.consts.get(id.raw() as usize).map(String::as_str)
    }

    /// Mints a fresh, never-before-seen variable (a labeled null).
    pub fn fresh_var(&mut self) -> VarId {
        let id = VarId::from_raw(self.next_var);
        self.next_var = self
            .next_var
            .checked_add(1)
            .expect("variable supply exhausted");
        id
    }

    /// Mints a fresh variable and records a display name for it.
    ///
    /// Re-using a name returns the previously minted variable, so source
    /// texts can mention `X` twice and mean the same variable.
    pub fn named_var(&mut self, name: &str) -> VarId {
        if let Some(&id) = self.var_by_name.get(name) {
            return id;
        }
        let id = self.fresh_var();
        self.var_names.insert(id, name.to_owned());
        self.var_by_name.insert(name.to_owned(), id);
        id
    }

    /// Records (or overrides) a display name for an existing variable.
    pub fn set_var_name(&mut self, var: VarId, name: &str) {
        self.var_names.insert(var, name.to_owned());
        self.var_by_name.insert(name.to_owned(), var);
    }

    /// The display name of a variable, if one was recorded.
    pub fn var_name(&self, var: VarId) -> Option<&str> {
        self.var_names.get(&var).map(String::as_str)
    }

    /// Ensures the fresh-variable supply will never return `var` again.
    ///
    /// Useful when atomsets were constructed with raw [`VarId`]s (e.g. in
    /// tests or analytic model generators) before chasing on top of them.
    pub fn ensure_var(&mut self, var: VarId) {
        if var.raw() >= self.next_var {
            self.next_var = var.raw() + 1;
        }
    }

    /// The number of variables minted so far.
    pub fn vars_minted(&self) -> u32 {
        self.next_var
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut v = Vocabulary::new();
        let p1 = v.pred("h", 2);
        let p2 = v.pred("h", 2);
        assert_eq!(p1, p2);
        assert_eq!(v.pred_name(p1), "h");
        assert_eq!(v.arity(p1), 2);

        let a = v.constant("a");
        let b = v.constant("a");
        assert_eq!(a, b);
        assert_eq!(v.const_name(a), Some("a"));
    }

    #[test]
    #[should_panic(expected = "re-declared")]
    fn arity_conflict_panics() {
        let mut v = Vocabulary::new();
        v.pred("h", 2);
        v.pred("h", 3);
    }

    #[test]
    fn fresh_vars_are_distinct() {
        let mut v = Vocabulary::new();
        let x = v.fresh_var();
        let y = v.fresh_var();
        assert_ne!(x, y);
    }

    #[test]
    fn named_vars_are_shared_by_name() {
        let mut v = Vocabulary::new();
        let x1 = v.named_var("X");
        let x2 = v.named_var("X");
        let y = v.named_var("Y");
        assert_eq!(x1, x2);
        assert_ne!(x1, y);
        assert_eq!(v.var_name(x1), Some("X"));
    }

    #[test]
    fn ensure_var_bumps_supply() {
        let mut v = Vocabulary::new();
        v.ensure_var(VarId::from_raw(41));
        let fresh = v.fresh_var();
        assert_eq!(fresh.raw(), 42);
    }

    #[test]
    fn lookup_does_not_intern() {
        let v = Vocabulary::new();
        assert!(v.lookup_pred("nope").is_none());
        assert!(v.lookup_constant("nope").is_none());
    }
}
