//! Atoms: a predicate applied to a tuple of terms.

use std::fmt;

use crate::term::{Term, VarId};
use crate::vocab::PredId;

/// An atom `p(t₁, …, t_k)` over some schema.
///
/// The argument tuple is stored inline as a boxed slice, so an `Atom` is a
/// pointer-sized header plus one allocation; clones are cheap and equality
/// and hashing are over `(PredId, args)` only.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom {
    pred: PredId,
    args: Box<[Term]>,
}

impl Atom {
    /// Creates an atom from a predicate and its arguments.
    pub fn new(pred: PredId, args: impl Into<Box<[Term]>>) -> Self {
        Atom {
            pred,
            args: args.into(),
        }
    }

    /// The predicate of this atom.
    pub fn pred(&self) -> PredId {
        self.pred
    }

    /// The argument tuple.
    pub fn args(&self) -> &[Term] {
        &self.args
    }

    /// The arity of the atom (length of the argument tuple).
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// Iterates over the terms of the atom (with multiplicity).
    pub fn terms(&self) -> impl Iterator<Item = Term> + '_ {
        self.args.iter().copied()
    }

    /// Iterates over the variables of the atom (with multiplicity).
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.args.iter().filter_map(|t| t.as_var())
    }

    /// Does the atom mention the given term?
    pub fn mentions(&self, term: Term) -> bool {
        self.args.contains(&term)
    }

    /// Is the atom ground (variable-free)?
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(|t| t.is_const())
    }

    /// Returns a copy with each argument rewritten by `f`.
    pub fn map_terms(&self, mut f: impl FnMut(Term) -> Term) -> Atom {
        Atom {
            pred: self.pred,
            args: self.args.iter().map(|&t| f(t)).collect(),
        }
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}(", self.pred)?;
        for (i, t) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t:?}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{ConstId, VarId};

    fn p() -> PredId {
        PredId::from_raw(0)
    }

    #[test]
    fn accessors() {
        let a = Atom::new(
            p(),
            vec![
                Term::Var(VarId::from_raw(1)),
                Term::Const(ConstId::from_raw(2)),
            ],
        );
        assert_eq!(a.pred(), p());
        assert_eq!(a.arity(), 2);
        assert!(a.mentions(Term::Var(VarId::from_raw(1))));
        assert!(!a.mentions(Term::Var(VarId::from_raw(9))));
        assert!(!a.is_ground());
        assert_eq!(a.vars().collect::<Vec<_>>(), vec![VarId::from_raw(1)]);
    }

    #[test]
    fn ground_atom() {
        let a = Atom::new(p(), vec![Term::Const(ConstId::from_raw(0))]);
        assert!(a.is_ground());
        assert_eq!(a.vars().count(), 0);
    }

    #[test]
    fn map_terms_rewrites_all_positions() {
        let x = Term::Var(VarId::from_raw(0));
        let a = Atom::new(p(), vec![x, x]);
        let b = a.map_terms(|_| Term::Const(ConstId::from_raw(5)));
        assert!(b.is_ground());
        assert_eq!(b.args().len(), 2);
        assert_eq!(b.pred(), a.pred());
    }

    #[test]
    fn equality_is_structural() {
        let x = Term::Var(VarId::from_raw(0));
        let y = Term::Var(VarId::from_raw(1));
        assert_eq!(Atom::new(p(), vec![x, y]), Atom::new(p(), vec![x, y]));
        assert_ne!(Atom::new(p(), vec![x, y]), Atom::new(p(), vec![y, x]));
    }
}
