//! Terms: constants and variables.
//!
//! Following the paper, the set of terms is `Δ_T = Δ_C ∪ Δ_V` where `Δ_C`
//! are constants and `Δ_V` are variables. Labeled nulls (created by rule
//! applications) are conflated with variables, as the paper does.

use std::fmt;

/// An interned constant symbol (an element of `Δ_C`).
///
/// The associated name lives in a [`crate::Vocabulary`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConstId(u32);

impl ConstId {
    /// Builds a constant id from its raw index. Prefer
    /// [`crate::Vocabulary::constant`] for named constants.
    pub const fn from_raw(raw: u32) -> Self {
        ConstId(raw)
    }

    /// The raw index of this constant.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for ConstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A variable (an element of `Δ_V`), also used for labeled nulls.
///
/// Variables are totally ordered by their raw index; this order doubles as
/// the `rank` bijection required by the paper's *robust renaming*
/// (Definition 14) unless a custom rank is supplied.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(u32);

impl VarId {
    /// Builds a variable id from its raw index. Prefer
    /// [`crate::Vocabulary::fresh_var`] / [`crate::Vocabulary::named_var`]
    /// in production code so freshness is tracked.
    pub const fn from_raw(raw: u32) -> Self {
        VarId(raw)
    }

    /// The raw index of this variable.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A term: either a constant or a variable.
///
/// `Term` is a 2-word `Copy` value so it can be passed around and stored in
/// indexes without allocation.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A constant from `Δ_C`.
    Const(ConstId),
    /// A variable (or labeled null) from `Δ_V`.
    Var(VarId),
}

impl Term {
    /// Is this term a variable?
    pub const fn is_var(self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// Is this term a constant?
    pub const fn is_const(self) -> bool {
        matches!(self, Term::Const(_))
    }

    /// Returns the variable id if this term is a variable.
    pub const fn as_var(self) -> Option<VarId> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// Returns the constant id if this term is a constant.
    pub const fn as_const(self) -> Option<ConstId> {
        match self {
            Term::Const(c) => Some(c),
            Term::Var(_) => None,
        }
    }
}

impl From<VarId> for Term {
    fn from(v: VarId) -> Self {
        Term::Var(v)
    }
}

impl From<ConstId> for Term {
    fn from(c: ConstId) -> Self {
        Term::Const(c)
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(c) => write!(f, "{c:?}"),
            Term::Var(v) => write!(f, "{v:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_accessors() {
        let v = Term::Var(VarId::from_raw(3));
        let c = Term::Const(ConstId::from_raw(7));
        assert!(v.is_var() && !v.is_const());
        assert!(c.is_const() && !c.is_var());
        assert_eq!(v.as_var(), Some(VarId::from_raw(3)));
        assert_eq!(v.as_const(), None);
        assert_eq!(c.as_const(), Some(ConstId::from_raw(7)));
        assert_eq!(c.as_var(), None);
    }

    #[test]
    fn term_ordering_groups_constants_first() {
        let c = Term::Const(ConstId::from_raw(1000));
        let v = Term::Var(VarId::from_raw(0));
        assert!(c < v, "all constants order before all variables");
    }

    #[test]
    fn var_order_matches_raw_order() {
        assert!(VarId::from_raw(1) < VarId::from_raw(2));
        assert!(Term::Var(VarId::from_raw(1)) < Term::Var(VarId::from_raw(2)));
    }

    #[test]
    fn term_is_two_words_max() {
        assert!(std::mem::size_of::<Term>() <= 2 * std::mem::size_of::<usize>());
    }
}
