//! A reusable bitset over [`AtomId`](crate::AtomId) raw indexes.
//!
//! [`IdBits`] is the scratch structure behind positional-index candidate
//! intersection: postings are sorted id lists, and intersecting several of
//! them marks the smaller list in the bitset and filters the driver with
//! O(1) membership tests. The caller unmarks exactly the bits it set
//! (`clear_ids`), so a search can reuse one allocation across thousands of
//! backtracking nodes without ever paying an O(capacity) clear.

/// A growable bitset indexed by raw atom ids.
#[derive(Clone, Default, Debug)]
pub struct IdBits {
    words: Vec<u64>,
}

impl IdBits {
    /// Creates an empty bitset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows the bitset to hold ids `< bits` (no-op when large enough).
    pub fn ensure(&mut self, bits: usize) {
        let words = bits.div_ceil(64);
        if self.words.len() < words {
            self.words.resize(words, 0);
        }
    }

    /// Sets bit `i`. The bitset must have been [`IdBits::ensure`]d past
    /// `i`.
    #[inline]
    pub fn insert(&mut self, i: u32) {
        self.words[(i >> 6) as usize] |= 1u64 << (i & 63);
    }

    /// Is bit `i` set? Out-of-capacity ids are reported unset.
    #[inline]
    pub fn contains(&self, i: u32) -> bool {
        self.words
            .get((i >> 6) as usize)
            .is_some_and(|w| w & (1u64 << (i & 63)) != 0)
    }

    /// Unsets bit `i` (no-op when out of capacity).
    #[inline]
    pub fn remove(&mut self, i: u32) {
        if let Some(w) = self.words.get_mut((i >> 6) as usize) {
            *w &= !(1u64 << (i & 63));
        }
    }

    /// Unsets exactly the given ids — the sparse clear that makes the
    /// scratch reusable in O(marked) instead of O(capacity).
    pub fn clear_ids(&mut self, ids: impl IntoIterator<Item = u32>) {
        for i in ids {
            self.remove(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut b = IdBits::new();
        b.ensure(200);
        assert!(!b.contains(0));
        b.insert(0);
        b.insert(63);
        b.insert(64);
        b.insert(199);
        assert!(b.contains(0) && b.contains(63) && b.contains(64) && b.contains(199));
        assert!(!b.contains(1) && !b.contains(198));
        // Ids past capacity read as unset instead of panicking.
        assert!(!b.contains(100_000));
        b.remove(63);
        assert!(!b.contains(63) && b.contains(64));
    }

    #[test]
    fn clear_ids_is_sparse() {
        let mut b = IdBits::new();
        b.ensure(1024);
        for i in [3u32, 700, 1000] {
            b.insert(i);
        }
        b.clear_ids([3u32, 700, 1000]);
        for i in [3u32, 700, 1000] {
            assert!(!b.contains(i));
        }
    }

    #[test]
    fn ensure_grows_and_preserves() {
        let mut b = IdBits::new();
        b.ensure(10);
        b.insert(5);
        b.ensure(1_000);
        assert!(b.contains(5));
        b.insert(999);
        assert!(b.contains(999));
    }
}
