//! Human-readable rendering of ids, terms, atoms and atomsets against a
//! [`Vocabulary`].
//!
//! The hot data structures carry only numeric ids, so `Display` needs the
//! vocabulary as context. The [`DisplayWith`] trait plus the [`WithVocab`]
//! adapter let call sites write `atom.with(&vocab)` inside any `format!`.

use std::fmt;

use crate::atom::Atom;
use crate::atomset::AtomSet;
use crate::substitution::Substitution;
use crate::term::{ConstId, Term, VarId};
use crate::vocab::{PredId, Vocabulary};

/// Types renderable against a vocabulary.
pub trait DisplayWith {
    /// Writes `self` using names from `vocab`.
    fn fmt_with(&self, vocab: &Vocabulary, f: &mut fmt::Formatter<'_>) -> fmt::Result;

    /// Wraps `self` for use in `format!`-style macros.
    fn with<'a>(&'a self, vocab: &'a Vocabulary) -> WithVocab<'a, Self>
    where
        Self: Sized,
    {
        WithVocab { value: self, vocab }
    }
}

/// Adapter pairing a value with a vocabulary so it implements
/// [`fmt::Display`].
pub struct WithVocab<'a, T> {
    value: &'a T,
    vocab: &'a Vocabulary,
}

impl<T: DisplayWith> fmt::Display for WithVocab<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.value.fmt_with(self.vocab, f)
    }
}

impl DisplayWith for VarId {
    fn fmt_with(&self, vocab: &Vocabulary, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match vocab.var_name(*self) {
            Some(name) => f.write_str(name),
            None => write!(f, "_N{}", self.raw()),
        }
    }
}

impl DisplayWith for ConstId {
    fn fmt_with(&self, vocab: &Vocabulary, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match vocab.const_name(*self) {
            Some(name) => f.write_str(name),
            None => write!(f, "_c{}", self.raw()),
        }
    }
}

impl DisplayWith for PredId {
    fn fmt_with(&self, vocab: &Vocabulary, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(vocab.pred_name(*self))
    }
}

impl DisplayWith for Term {
    fn fmt_with(&self, vocab: &Vocabulary, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(c) => c.fmt_with(vocab, f),
            Term::Var(v) => v.fmt_with(vocab, f),
        }
    }
}

impl DisplayWith for Atom {
    fn fmt_with(&self, vocab: &Vocabulary, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.pred().fmt_with(vocab, f)?;
        f.write_str("(")?;
        for (i, t) in self.args().iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            t.fmt_with(vocab, f)?;
        }
        f.write_str(")")
    }
}

impl DisplayWith for AtomSet {
    fn fmt_with(&self, vocab: &Vocabulary, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        let mut atoms = self.sorted_atoms();
        atoms.sort();
        for (i, a) in atoms.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            a.fmt_with(vocab, f)?;
        }
        f.write_str("}")
    }
}

impl DisplayWith for Substitution {
    fn fmt_with(&self, vocab: &Vocabulary, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, (v, t)) in self.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            v.fmt_with(vocab, f)?;
            f.write_str(" ↦ ")?;
            t.fmt_with(vocab, f)?;
        }
        f.write_str("}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_named_symbols() {
        let mut vocab = Vocabulary::new();
        let h = vocab.pred("h", 2);
        let a = vocab.constant("a");
        let x = vocab.named_var("X");
        let atom = Atom::new(h, vec![Term::Const(a), Term::Var(x)]);
        assert_eq!(format!("{}", atom.with(&vocab)), "h(a, X)");
    }

    #[test]
    fn renders_anonymous_null() {
        let mut vocab = Vocabulary::new();
        let h = vocab.pred("h", 1);
        let n = vocab.fresh_var();
        let atom = Atom::new(h, vec![Term::Var(n)]);
        assert_eq!(
            format!("{}", atom.with(&vocab)),
            format!("h(_N{})", n.raw())
        );
    }

    #[test]
    fn renders_atomset_sorted() {
        let mut vocab = Vocabulary::new();
        let p = vocab.pred("p", 1);
        let q = vocab.pred("q", 1);
        let a = vocab.constant("a");
        let mut s = AtomSet::new();
        s.insert(Atom::new(q, vec![Term::Const(a)]));
        s.insert(Atom::new(p, vec![Term::Const(a)]));
        // p interned before q ⇒ p sorts first regardless of insertion order.
        assert_eq!(format!("{}", s.with(&vocab)), "{p(a), q(a)}");
    }

    #[test]
    fn renders_substitution() {
        let mut vocab = Vocabulary::new();
        let x = vocab.named_var("X");
        let y = vocab.named_var("Y");
        let s = Substitution::from_pairs([(x, Term::Var(y))]);
        assert_eq!(format!("{}", s.with(&vocab)), "{X ↦ Y}");
    }
}
