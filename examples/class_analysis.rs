//! Classify your own ruleset: run the fes / bts / core-bts probes of
//! Figure 1 against a user-supplied program and race the Theorem 1 twin
//! decision procedure on a query.
//!
//! ```sh
//! cargo run --example class_analysis
//! ```

use treechase::analysis::analyze as static_analyze;
use treechase::core::classes::probe_classes;
use treechase::prelude::*;

fn analyze(name: &str, src: &str, query: &str) {
    let mut kb = KnowledgeBase::from_text(src).expect("program parses");
    let probe = probe_classes(&kb, 60);
    println!("— {name} —");
    // Static certificates first: they hold for *every* fact base.
    let report = static_analyze(&kb.rules);
    println!(
        "  static: weakly-acyclic={} jointly-acyclic={} guarded={} ⇒ fes={} bts={}",
        report.weakly_acyclic,
        report.jointly_acyclic,
        report.guardedness.is_guarded(),
        report.certified_fes(),
        report.certified_bts()
    );
    println!(
        "  fes evidence (core chase terminates): {}",
        probe.core_chase_terminated
    );
    println!(
        "  bts evidence: restricted chase {} with tw profile max {}",
        if probe.restricted_chase_terminated {
            "terminated"
        } else {
            "diverged"
        },
        probe.restricted_uniform_bound()
    );
    println!(
        "  core-bts evidence: core chase tw max {} / recurring {:?}",
        probe.core_uniform_bound(),
        probe.core_recurring_bound()
    );
    let q = kb.parse_query(query).expect("query parses");
    let budgets = DecideConfig {
        max_applications: 200,
        max_atoms: 10_000,
        core_max_applications: 40,
    };
    let out = decide(&kb, &q, &budgets);
    println!("  decide({query}) = {out:?}\n");
}

fn main() {
    analyze(
        "linear chain (bts, not fes)",
        "r(a, b). R: r(X, Y) -> r(Y, Z).",
        "r(A, B), r(B, C)",
    );
    analyze(
        "looping closure (fes, not bts)",
        "r(a, b). r(b, c). R: r(X, Y), r(Y, Z) -> r(X, X), r(X, Z), r(Z, V).",
        "r(X, X)",
    );
    analyze(
        "guarded-ish tree builder (bts)",
        "node(root). N: node(X) -> edge(X, Y), node(Y), edge(X, Z), node(Z).",
        "edge(A, B), edge(A, C)",
    );
    analyze(
        "grid grower (outside every class)",
        "
        top(a). left(a).
        Right: top(X) -> h(X, Y), top(Y).
        Down:  left(X) -> v(X, Y), left(Y).
        Fill:  h(X, Y), v(X, X2) -> h(X2, Y2), v(Y, Y2).
        ",
        "h(A, B), v(A, C), h(C, D), v(B, D)",
    );
}
