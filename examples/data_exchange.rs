//! Data exchange with source-to-target dependencies — the classic
//! application of the chase (Fagin, Kolaitis, Miller, Popa, TCS 2005):
//! chase the source instance with the st-tgds and target constraints to
//! obtain a *universal solution*, then answer target queries by certain
//! answers.
//!
//! ```sh
//! cargo run --example data_exchange
//! ```

use treechase::analysis::analyze;
use treechase::core::cq::{certain_answers, AnswerQuery};
use treechase::prelude::*;

fn main() {
    // Source schema: emp(name, dept); target schema: works_in(name, dept),
    // dept_head(dept, head), managed(name, head).
    let src = "
        % source data
        emp(ann, cs). emp(bea, cs). emp(cal, math).

        % st-tgds: every employee moves to the target; every target dept
        % gets an (unknown) head.
        ST1: emp(N, D) -> works_in(N, D).
        ST2: works_in(N, D) -> dept_head(D, H).

        % target tgd: employees are managed by their department head.
        T1: works_in(N, D), dept_head(D, H) -> managed(N, H).
    ";
    let mut kb = KnowledgeBase::from_text(src).expect("mapping parses");

    // Static analysis: this mapping is weakly acyclic, so the chase
    // terminates on every source instance — the data-exchange guarantee.
    let report = analyze(&kb.rules);
    println!("--- static analysis of the mapping ---\n{report}\n");
    assert!(report.weakly_acyclic);

    // Build the universal solution with the core chase (this yields the
    // *core solution*, the smallest universal solution — exactly the
    // "best" target instance of data exchange).
    let result = kb.chase(&ChaseConfig::variant(ChaseVariant::Core));
    assert!(result.outcome.terminated());
    println!(
        "--- core universal solution ({} atoms) ---\n{}\n",
        result.final_instance.len(),
        result.final_instance.with(&kb.vocab)
    );

    // Certain answers: who works in cs? (Constants only — the invented
    // department heads are labeled nulls and must not be returned.)
    let q_atoms = kb.parse_query("works_in(X, cs)").unwrap();
    let x = *q_atoms.vars().iter().next().unwrap();
    let query = AnswerQuery::new(q_atoms, vec![x]).unwrap();
    let answers = certain_answers(&kb, &query, &ChaseConfig::variant(ChaseVariant::Core));
    println!("--- certain answers to works_in(X, cs) ---");
    for tuple in &answers.answers {
        println!("  X = {}", kb.vocab.const_name(tuple[0]).unwrap_or("?"));
    }
    assert!(answers.complete);
    assert_eq!(answers.answers.len(), 2);

    // Boolean query: do two cs employees share a manager? True in every
    // solution (they share the department head).
    let shared = kb.parse_query("managed(ann, H), managed(bea, H)").unwrap();
    let verdict = entail(&kb, &shared, &ChaseConfig::variant(ChaseVariant::Core));
    println!("\nann and bea share a manager: {verdict:?}");
    assert!(verdict.is_entailed());

    // And a non-certain one: is cal managed by ann? No model forces it.
    let no = kb.parse_query("managed(cal, ann)").unwrap();
    let verdict = entail(&kb, &no, &ChaseConfig::variant(ChaseVariant::Core));
    println!("cal managed by ann: {verdict:?}");
    assert!(verdict.is_not_entailed());
}
