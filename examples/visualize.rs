//! Export the paper's structures as Graphviz DOT files: the staircase
//! universal model prefix, the core-chase derivation, and the robust
//! aggregation — render them with `dot -Tsvg`.
//!
//! ```sh
//! cargo run --example visualize
//! dot -Tsvg target/viz/staircase_prefix.dot -o staircase.svg
//! ```

use std::fs;
use std::path::Path;

use treechase::engine::dot::{derivation_dot, instance_dot};
use treechase::engine::robust::RobustSequence;
use treechase::kbs::{Elevator, Staircase};

fn main() {
    let out_dir = Path::new("target/viz");
    fs::create_dir_all(out_dir).expect("create target/viz");

    let mut s = Staircase::new();

    // Figure 2 right: the universal model I^h (prefix).
    let prefix = s.universal_prefix(4);
    fs::write(
        out_dir.join("staircase_prefix.dot"),
        instance_dot(&s.vocab, &prefix, "I^h prefix (Figure 2)"),
    )
    .unwrap();

    // The canonical core chase D_c: one cluster per element.
    let d = s.scripted_core_chase(2);
    fs::write(
        out_dir.join("staircase_core_chase.dot"),
        derivation_dot(&s.vocab, &d, "staircase core chase"),
    )
    .unwrap();

    // The robust aggregation Ĩ^h.
    let rs = RobustSequence::build(&d);
    let dsq = rs.aggregation_prefix(2 + 3);
    fs::write(
        out_dir.join("staircase_robust_aggregation.dot"),
        instance_dot(&s.vocab, &dsq, "robust aggregation D^⊛ ≅ Ĩ^h"),
    )
    .unwrap();

    // Figure 4: the elevator's universal model and spine.
    let mut e = Elevator::new();
    let prefix_v = e.universal_prefix(3);
    let spine_v = e.spine_prefix(4);
    let cabin_v = e.cabin(3);
    fs::write(
        out_dir.join("elevator_prefix.dot"),
        instance_dot(&e.vocab, &prefix_v, "I^v prefix (Figure 4)"),
    )
    .unwrap();
    fs::write(
        out_dir.join("elevator_spine.dot"),
        instance_dot(&e.vocab, &spine_v, "I^v* spine (Figure 4)"),
    )
    .unwrap();
    fs::write(
        out_dir.join("elevator_cabin.dot"),
        instance_dot(&e.vocab, &cabin_v, "cabin I^v_3 (Figure 4)"),
    )
    .unwrap();

    for entry in fs::read_dir(out_dir).unwrap() {
        println!("wrote {}", entry.unwrap().path().display());
    }
}
