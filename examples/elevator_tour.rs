//! A guided tour of the paper's *inflating elevator* `K_v` (Section 7):
//! the KB with a treewidth-1 universal model whose every core chase blows
//! up structurally.
//!
//! ```sh
//! cargo run --example elevator_tour
//! ```

use treechase::engine::boundedness::treewidth_profile;
use treechase::kbs::grids::best_grid_lower_bound;
use treechase::kbs::Elevator;
use treechase::prelude::*;

fn main() {
    let mut e = Elevator::new();
    println!("Σ_v rules:");
    for (_, rule) in e.rules.iter() {
        println!("  {}: {}", rule.name(), rule.with(&e.vocab));
    }
    println!("F_v = {}", e.facts.with(&e.vocab));

    // The spine I^v* is a universal model of treewidth 1.
    let spine = e.spine_prefix(6);
    println!(
        "\nspine I^v* (7 columns): {} atoms, treewidth {}",
        spine.len(),
        treewidth(&spine)
    );

    // The cabins I^v_n are cores with growing grid content.
    for n in [2u32, 4] {
        let cabin = e.cabin(n);
        let side = n / 3 + 1;
        let lab = e.cabin_grid_labeling(n);
        println!(
            "cabin I^v_{n}: {} atoms, core: {}, {side}×{side} grid: {}",
            cabin.len(),
            is_core(&cabin),
            contains_grid(&cabin, &lab)
        );
    }

    // Run the real core chase and watch its treewidth climb — contrast
    // with the staircase, where the core chase stays at 2.
    let mut vocab = e.vocab.clone();
    let cfg = ChaseConfig::variant(ChaseVariant::Core)
        .with_scheduler(SchedulerKind::DatalogFirst)
        .with_max_applications(120);
    let run = run_chase(&mut vocab, &e.facts, &e.rules, &cfg);
    let d = run.derivation.expect("full record");
    let profile = treewidth_profile(&d);
    let ubs: Vec<usize> = profile.iter().map(|b| b.upper).collect();
    println!(
        "\ncore chase ({} applications): tw upper bounds (every 10th) {:?}",
        run.stats.applications,
        ubs.iter().step_by(10).collect::<Vec<_>>()
    );

    let h = e.vocab.lookup_pred("h").unwrap();
    let v = e.vocab.lookup_pred("v").unwrap();
    let bound = best_grid_lower_bound(d.last_instance(), 5, h, v);
    let side = bound.side;
    println!(
        "certified grid in the final element: {side}×{side} ⇒ tw ≥ {side} (Fact 2){}",
        if bound.truncated {
            " — search truncated, larger grids not refuted"
        } else {
            ""
        }
    );

    // Yet CQ answering still works through the spine:
    let kb = KnowledgeBase::elevator();
    let mut kb2 = kb.clone();
    let q = kb2.parse_query("c(A), h(A, B), v(B, C), c(C)").unwrap();
    println!(
        "\nK_v ⊨ spine-step query? {:?}",
        entail(
            &kb,
            &q,
            &ChaseConfig::variant(ChaseVariant::Restricted).with_max_applications(200)
        )
    );
}
