//! A guided tour of the paper's *steepening staircase* `K_h`
//! (Section 6): the KB whose core chase stays at treewidth 2 while every
//! universal model has unbounded treewidth.
//!
//! ```sh
//! cargo run --example staircase_tour
//! ```

use treechase::engine::aggregation::natural_aggregation;
use treechase::engine::boundedness::treewidth_profile;
use treechase::engine::robust::RobustSequence;
use treechase::kbs::Staircase;
use treechase::prelude::*;

fn main() {
    let mut s = Staircase::new();
    println!("Σ_h rules:");
    for (_, rule) in s.rules.iter() {
        println!("  {}: {}", rule.name(), rule.with(&s.vocab));
    }
    println!("F_h = {}", s.facts.with(&s.vocab));

    // The canonical core chase: build step S_k, fold onto column C_{k+1}.
    let steps = 4;
    let d = s.scripted_core_chase(steps);
    assert_eq!(d.validate(), Ok(()));
    let profile = treewidth_profile(&d);
    println!(
        "\ncore chase through step {steps}: {} elements, tw upper bounds {:?}",
        d.len(),
        profile.iter().map(|b| b.upper).collect::<Vec<_>>()
    );
    println!(
        "final element = column C_{steps} = {}",
        d.last_instance().with(&s.vocab)
    );

    // The natural aggregation recovers the universal model I^h — which
    // contains grids, hence has unbounded treewidth.
    let agg = natural_aggregation(&d);
    let lab = s.grid_labeling(1);
    println!(
        "\nnatural aggregation D* has {} atoms; contains a 1×1 grid: {}",
        agg.len(),
        contains_grid(&agg, &lab)
    );

    // The robust aggregation instead converges to the infinite column —
    // a treewidth-1 finitely universal model.
    let rs = RobustSequence::build(&d);
    let dsq = rs.aggregation_prefix(2 * (steps as usize - 1) + 3);
    println!(
        "robust aggregation D^⊛ prefix: {} atoms, treewidth {}",
        dsq.len(),
        treewidth(&dsq)
    );
    println!("D^⊛ = {}", dsq.with(&s.vocab));

    // Both answer CQs identically (finite universality, Proposition 9).
    let kb = KnowledgeBase::staircase();
    let mut kb2 = kb.clone();
    let q = kb2
        .parse_query("h(A, B), v(A, C), h(C, D), v(B, D)")
        .unwrap();
    println!(
        "\nK_h ⊨ square-query? {:?}",
        entail(
            &kb,
            &q,
            &ChaseConfig::variant(ChaseVariant::Core).with_max_applications(60)
        )
    );
}
