//! Quickstart: define a knowledge base in the text syntax, run the core
//! chase, and answer conjunctive queries.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use treechase::prelude::*;

fn main() {
    // A small family KB: every person has a parent; parenthood composes
    // into ancestry; ancestry is transitive.
    let src = "
        person(alice).
        parent(alice, bob).
        P:  person(X) -> parent(X, Y), person(Y).
        A1: parent(X, Y) -> anc(X, Y).
        A2: anc(X, Y), anc(Y, Z) -> anc(X, Z).
    ";
    let mut kb = KnowledgeBase::from_text(src).expect("the program parses");

    // The rule `P` makes the chase infinite (every new person needs a new
    // parent), so we give the chase a budget.
    let cfg = ChaseConfig::variant(ChaseVariant::Core).with_max_applications(60);
    let result = kb.chase(&cfg);
    println!(
        "core chase: {:?} after {} applications, {} atoms",
        result.outcome,
        result.stats.applications,
        result.final_instance.len()
    );

    // Entailment through the chase: positive answers are certified by
    // universality of the chase elements (Proposition 1 of the paper).
    for (text, expected) in [
        ("anc(alice, bob)", true),
        ("parent(alice, X), parent(X, Y)", true),
        ("anc(X, X)", false),
    ] {
        let query = kb.parse_query(text).expect("query parses");
        let verdict = entail(&kb, &query, &cfg);
        println!("K ⊨ {text}?  {verdict:?}  (expected entailed={expected})");
    }

    // The Theorem 1 twin procedure races a query-hunting chase against a
    // termination-hunting chase:
    let query = kb.parse_query("anc(bob, alice)").expect("query parses");
    let budgets = DecideConfig {
        max_applications: 300,
        max_atoms: 20_000,
        core_max_applications: 60,
    };
    let outcome = decide(&kb, &query, &budgets);
    println!("twin decision for anc(bob, alice): {outcome:?}");
}
